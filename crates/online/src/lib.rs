//! # soar-online
//!
//! Incremental re-optimization for **dynamic** φ-BIC workloads.
//!
//! The offline SOAR pipeline solves a static snapshot `(T, L, Λ, k)` from
//! scratch in `O(n · h(T) · k²)`. The settings the paper targets — datacenter
//! aggregation under multi-tenant churn — are not static: tenants arrive and
//! depart, leaf sending rates drift, budgets change. Re-running the full DP
//! every epoch wastes almost all of its work, because the gather tables form a
//! *tree-structured* DP: a node's table depends only on its own load /
//! availability, its ρ prefix block and its children's `X` tables. A change at
//! one leaf therefore invalidates **only the root-to-leaf path** — `O(h(T))`
//! nodes, `O(h(T) · k²)` DP cells — and every other node's table can be reused
//! bit-for-bit.
//!
//! This crate turns that observation into an engine:
//!
//! * [`DynamicInstance`] — a mutable φ-BIC instance that applies
//!   [`ChurnEvent`]s (leaf rate changes, tenant arrivals/departures, budget
//!   changes, and the failure-domain events below) and tracks the **dirty
//!   subtree closure** with reusable buffers;
//! * [`IncrementalSolver`] — wraps a
//!   [`SolverWorkspace`](soar_core::workspace::SolverWorkspace) and re-solves
//!   an epoch by refilling only the dirty nodes
//!   ([`SolverWorkspace::gather_update`](soar_core::workspace::SolverWorkspace::gather_update)),
//!   then streams SOAR-Color through the workspace's reusable coloring — a
//!   warm epoch performs **zero heap allocations**;
//! * [`OnlineDriver`] — replays a [`ChurnTimeline`], optionally verifying
//!   every epoch against a from-scratch solve (bit-identical by construction),
//!   and reports the placement trajectory: cost over time, placement moves per
//!   epoch, and DP cells written incrementally vs from-scratch.
//!
//! ## Failure-domain churn
//!
//! Two event kinds model the network degrading rather than the workload
//! moving:
//!
//! * [`ChurnEvent::SwitchAvailability`] — a switch exhausts or regains its
//!   in-network compute capacity. An exhausted switch degrades to
//!   **forwarding-only**: the DP can no longer color it blue (its `Y_blue`
//!   row is infinite), traffic still flows through it. Availability is an
//!   input of the per-node table fill, so the event dirties just the switch's
//!   root-to-leaf closure — as cheap as a leaf-load change.
//! * [`ChurnEvent::LinkRateChange`] — the rate ω of a switch's up-link moves
//!   (degradation or repair). The transmission time ρ = 1/ω of that link sits
//!   in the ρ prefix block of **every node below it**, so the event dirties
//!   the link's whole subtree; the partial gather then recomputes those
//!   blocks in place (the partial rho-arena reset) before refilling. Epochs
//!   stay bit-identical to from-scratch solves, and still touch only the
//!   affected region.
//!
//! ```
//! use soar_multitenant::churn::ChurnModel;
//! use soar_online::{DynamicInstance, OnlineDriver, Verify};
//! use soar_topology::builders;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A BT(64) under the default churn model, re-optimized for 8 epochs.
//! let tree = builders::complete_binary_tree_bt(64);
//! let timeline = ChurnModel::paper_default().generate(
//!     &tree, 8, &mut StdRng::seed_from_u64(7));
//! let mut instance = DynamicInstance::new(&tree, 4);
//! let report = OnlineDriver::with_verification(Verify::Tables)
//!     .run(&mut instance, &timeline)
//!     .unwrap();
//!
//! assert_eq!(report.len(), 8);
//! // After the first (necessarily full) epoch, updates are incremental and
//! // touch a small fraction of the DP table.
//! for epoch in &report.epochs[1..] {
//!     assert!(epoch.incremental);
//!     assert!(epoch.cells_written < epoch.cells_full);
//!     assert_eq!(epoch.alloc_events, 0, "warm epochs are allocation-free");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use soar_core::api::{DpStats, Instance};
use soar_core::workspace::SolverWorkspace;
use soar_multitenant::churn::{ChurnEvent, Epoch, TenantId};
use soar_reduce::Coloring;
use soar_topology::{NodeId, Tree};
use std::collections::BTreeMap;
use std::fmt;

pub use soar_multitenant::churn::{ChurnModel, ChurnTimeline};

/// Errors raised while applying churn events to a [`DynamicInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OnlineError {
    /// An event referenced a switch id outside the tree.
    UnknownSwitch(NodeId),
    /// A `LeafRateChange` targeted an internal switch.
    NotALeaf(NodeId),
    /// A `TenantArrive` reused the id of a still-active tenant.
    DuplicateTenant(TenantId),
    /// A `TenantDepart` named a tenant that is not active.
    UnknownTenant(TenantId),
    /// A `LinkRateChange` carried a non-positive or non-finite rate for the
    /// up-link of this switch.
    InvalidRate(NodeId),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::UnknownSwitch(v) => write!(f, "unknown switch id {v}"),
            OnlineError::NotALeaf(v) => {
                write!(f, "switch {v} is not a leaf (rate changes target leaves)")
            }
            OnlineError::DuplicateTenant(t) => write!(f, "tenant {t} is already active"),
            OnlineError::UnknownTenant(t) => write!(f, "tenant {t} is not active"),
            OnlineError::InvalidRate(v) => {
                write!(
                    f,
                    "link-rate change for switch {v} is not a positive finite rate"
                )
            }
        }
    }
}

impl std::error::Error for OnlineError {}

/// Dirty-node bookkeeping with reusable buffers: which nodes' DP tables are
/// stale, and the ancestor-closed, deepest-first closure the partial gather
/// consumes. All buffers are preallocated at construction, so steady-state
/// epochs never allocate here.
#[derive(Debug, Clone)]
struct DirtyTracker {
    /// `marked[v]`: `v` is in the current dirty set (touched or an ancestor).
    marked: Vec<bool>,
    /// The dirty set in discovery order (deduplicated via `marked`).
    touched: Vec<NodeId>,
    /// The last computed closure, sorted deepest-first.
    closure: Vec<NodeId>,
    /// DFS scratch of [`Self::mark_subtree`].
    stack: Vec<NodeId>,
    /// The budget changed: the DP table shape is stale, a full re-gather is
    /// required regardless of the dirty set.
    budget_changed: bool,
}

impl DirtyTracker {
    fn new(n: usize) -> Self {
        DirtyTracker {
            marked: vec![false; n],
            touched: Vec::with_capacity(n),
            closure: Vec::with_capacity(n),
            stack: Vec::with_capacity(n),
            budget_changed: false,
        }
    }

    fn mark(&mut self, v: NodeId) {
        if !self.marked[v] {
            self.marked[v] = true;
            self.touched.push(v);
        }
    }

    /// Marks every node of the subtree rooted at `v` (inclusive) — the dirty
    /// footprint of a link-rate change on `v`'s up-link: the ρ prefix block of
    /// exactly these nodes contains the changed link, and the partial gather
    /// recomputes a dirty node's block before refilling it.
    fn mark_subtree(&mut self, tree: &Tree, v: NodeId) {
        self.stack.clear();
        self.stack.push(v);
        while let Some(u) = self.stack.pop() {
            self.mark(u);
            self.stack.extend_from_slice(tree.children(u));
        }
    }

    /// Ancestor-closes the dirty set and returns it sorted deepest-first (ties
    /// by id, so the order — and therefore every downstream statistic — is
    /// deterministic).
    fn closure(&mut self, tree: &Tree) -> &[NodeId] {
        let mut i = 0;
        while i < self.touched.len() {
            if let Some(parent) = tree.parent(self.touched[i]) {
                if !self.marked[parent] {
                    self.marked[parent] = true;
                    self.touched.push(parent);
                }
            }
            i += 1;
        }
        self.closure.clear();
        self.closure.extend_from_slice(&self.touched);
        self.closure
            .sort_unstable_by_key(|&v| (std::cmp::Reverse(tree.depth(v)), v));
        &self.closure
    }

    /// Clears the epoch's dirty set (buffers kept warm).
    fn reset_epoch(&mut self) {
        for &v in &self.touched {
            self.marked[v] = false;
        }
        self.touched.clear();
        self.budget_changed = false;
    }
}

/// A φ-BIC instance under churn: the shared topology with its current loads
/// and budget, the active tenants, and the dirty-subtree bookkeeping that
/// makes epoch re-solves incremental.
///
/// The tree's *shape* is fixed for the instance's lifetime — that is what
/// keeps the DP arena layout valid across epochs. Loads, the budget, switch
/// availability and link rates all churn through events; a clean node's table
/// stays valid because none of its fill inputs (own load/availability, ρ
/// prefix block, children's tables) moved.
#[derive(Debug, Clone)]
pub struct DynamicInstance {
    tree: Tree,
    budget: usize,
    /// Non-tenant ("background") load per switch, set by `LeafRateChange`.
    base_loads: Vec<u64>,
    /// Aggregate tenant load per switch (the sum of active footprints).
    tenant_loads: Vec<u64>,
    /// Active tenants and their footprints (ordered for deterministic debug
    /// output).
    tenants: BTreeMap<TenantId, Vec<(NodeId, u64)>>,
    dirty: DirtyTracker,
}

impl DynamicInstance {
    /// Wraps a tree (its current loads become the background load) with a
    /// starting budget.
    pub fn new(tree: &Tree, budget: usize) -> Self {
        let n = tree.n_switches();
        DynamicInstance {
            base_loads: tree.loads(),
            tenant_loads: vec![0; n],
            tenants: BTreeMap::new(),
            dirty: DirtyTracker::new(n),
            tree: tree.clone(),
            budget,
        }
    }

    /// Wraps an offline [`Instance`] snapshot (tree + budget).
    pub fn from_instance(instance: &Instance) -> Self {
        DynamicInstance::new(instance.tree(), instance.budget())
    }

    /// The current tree (loads reflect all applied events).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The current aggregation budget `k`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.tree.n_switches()
    }

    /// Ids of the currently active tenants, in increasing order.
    pub fn active_tenants(&self) -> Vec<TenantId> {
        self.tenants.keys().copied().collect()
    }

    /// Applies one churn event, updating the tree's loads / the budget and
    /// marking the touched switches dirty. Failed events leave the instance
    /// unchanged.
    pub fn apply(&mut self, event: &ChurnEvent) -> Result<(), OnlineError> {
        let n = self.tree.n_switches();
        match event {
            ChurnEvent::LeafRateChange { leaf, load } => {
                if *leaf >= n {
                    return Err(OnlineError::UnknownSwitch(*leaf));
                }
                if !self.tree.is_leaf(*leaf) {
                    return Err(OnlineError::NotALeaf(*leaf));
                }
                if self.base_loads[*leaf] != *load {
                    self.base_loads[*leaf] = *load;
                    self.refresh_load(*leaf);
                }
            }
            ChurnEvent::TenantArrive { tenant, loads } => {
                if self.tenants.contains_key(tenant) {
                    return Err(OnlineError::DuplicateTenant(*tenant));
                }
                if let Some(&(v, _)) = loads.iter().find(|&&(v, _)| v >= n) {
                    return Err(OnlineError::UnknownSwitch(v));
                }
                for &(v, load) in loads {
                    self.tenant_loads[v] += load;
                    self.refresh_load(v);
                }
                self.tenants.insert(*tenant, loads.clone());
            }
            ChurnEvent::TenantDepart { tenant } => {
                let loads = self
                    .tenants
                    .remove(tenant)
                    .ok_or(OnlineError::UnknownTenant(*tenant))?;
                for (v, load) in loads {
                    self.tenant_loads[v] -= load;
                    self.refresh_load(v);
                }
            }
            ChurnEvent::BudgetChange { budget } => {
                if self.budget != *budget {
                    self.budget = *budget;
                    self.dirty.budget_changed = true;
                }
            }
            ChurnEvent::SwitchAvailability { switch, available } => {
                if *switch >= n {
                    return Err(OnlineError::UnknownSwitch(*switch));
                }
                if self.tree.available(*switch) != *available {
                    self.tree.set_available(*switch, *available);
                    self.dirty.mark(*switch);
                }
            }
            ChurnEvent::LinkRateChange { switch, rate } => {
                if *switch >= n {
                    return Err(OnlineError::UnknownSwitch(*switch));
                }
                if !(rate.is_finite() && *rate > 0.0) {
                    return Err(OnlineError::InvalidRate(*switch));
                }
                if self.tree.rate(*switch) != *rate {
                    self.tree.set_rate(*switch, *rate);
                    // The changed link sits in the ρ prefix block of every
                    // node below it: dirty the whole subtree so the partial
                    // gather's rho-arena reset reaches each moved block.
                    self.dirty.mark_subtree(&self.tree, *switch);
                }
            }
        }
        Ok(())
    }

    /// Applies a whole epoch's events in order.
    pub fn apply_epoch(&mut self, events: &Epoch) -> Result<(), OnlineError> {
        let _apply = soar_obs::span!("epoch_apply", events.len());
        for event in events {
            self.apply(event)?;
        }
        Ok(())
    }

    /// Re-derives switch `v`'s effective load (background + tenants) and marks
    /// it dirty.
    fn refresh_load(&mut self, v: NodeId) {
        self.tree
            .set_load(v, self.base_loads[v] + self.tenant_loads[v]);
        self.dirty.mark(v);
    }

    /// A point-in-time offline [`Instance`] of the current state (clones the
    /// tree; used by verification and for hand-offs to the batch API).
    pub fn snapshot(&self) -> Instance {
        Instance::from_tree(&self.tree, self.budget)
    }

    /// Captures everything churn can move into a plain-data [`InstanceImage`].
    ///
    /// Restoring the image onto a freshly built instance of the same shape
    /// ([`Self::restore_image`]) reproduces this instance's solver-visible
    /// state **exactly** — loads, link rates (bit-for-bit), availability,
    /// budget and the active-tenant registry — which is what makes crash
    /// recovery from a snapshot bit-identical to never having crashed.
    pub fn image(&self) -> InstanceImage {
        let n = self.tree.n_switches();
        InstanceImage {
            budget: self.budget,
            base_loads: self.base_loads.clone(),
            rates: (0..n).map(|v| self.tree.rate(v)).collect(),
            available: (0..n).map(|v| self.tree.available(v)).collect(),
            tenants: self
                .tenants
                .iter()
                .map(|(t, loads)| (*t, loads.clone()))
                .collect(),
        }
    }

    /// Overwrites this instance's mutable state from an image captured by
    /// [`Self::image`] on an instance of the same shape. The next solve is
    /// forced full (everything is stale), after which epochs are incremental
    /// again.
    ///
    /// # Panics
    ///
    /// If the image's vectors do not match this instance's switch count or
    /// name switches outside the tree, or a rate is not positive and finite —
    /// callers deserializing untrusted bytes must validate first.
    pub fn restore_image(&mut self, image: &InstanceImage) {
        let n = self.tree.n_switches();
        assert_eq!(image.base_loads.len(), n, "image shape mismatch (loads)");
        assert_eq!(image.rates.len(), n, "image shape mismatch (rates)");
        assert_eq!(
            image.available.len(),
            n,
            "image shape mismatch (availability)"
        );
        self.budget = image.budget;
        self.base_loads.copy_from_slice(&image.base_loads);
        self.tenant_loads.iter_mut().for_each(|l| *l = 0);
        self.tenants.clear();
        for (tenant, loads) in &image.tenants {
            for &(v, load) in loads {
                assert!(
                    v < n,
                    "image tenant footprint names switch {v} outside the tree"
                );
                self.tenant_loads[v] += load;
            }
            self.tenants.insert(*tenant, loads.clone());
        }
        for v in 0..n {
            self.tree
                .set_load(v, self.base_loads[v] + self.tenant_loads[v]);
            self.tree.set_rate(v, image.rates[v]);
            self.tree.set_available(v, image.available[v]);
        }
        // Everything is potentially stale relative to any warm solver state:
        // force the next epoch full, exactly like a budget change does.
        self.dirty.reset_epoch();
        self.dirty.budget_changed = true;
    }
}

/// A plain-data image of a [`DynamicInstance`]'s mutable state — the
/// serialization boundary of crash-safe daemons. See
/// [`DynamicInstance::image`].
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceImage {
    /// The aggregation budget `k` at capture time.
    pub budget: usize,
    /// Per-switch background load (tenant contributions excluded).
    pub base_loads: Vec<u64>,
    /// Per-switch up-link rate ω (compare bit-for-bit, not approximately).
    pub rates: Vec<f64>,
    /// Per-switch availability `v ∈ Λ`.
    pub available: Vec<bool>,
    /// Active tenants and their footprints, in increasing tenant order.
    pub tenants: Vec<(TenantId, Vec<(NodeId, u64)>)>,
}

/// The outcome of one epoch's re-solve (the coloring itself is read through
/// [`IncrementalSolver::coloring`], borrow-free of this value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSolve {
    /// Optimal utilization of the epoch's snapshot.
    pub cost: f64,
    /// The all-red baseline of the same snapshot (free out of the DP tables:
    /// `X_r(1, 0)`).
    pub all_red_cost: f64,
    /// Number of blue switches used.
    pub blue_used: usize,
    /// `false` for the (necessarily full) first solve and after budget
    /// changes; `true` when only the dirty closure was refilled.
    pub incremental: bool,
    /// DP statistics of the epoch's gather ([`DpStats::cells_written`] vs
    /// [`DpStats::table_cells`] is the incremental saving).
    pub dp: DpStats,
}

/// The incremental epoch solver: one warm [`SolverWorkspace`] tied to one
/// [`DynamicInstance`]'s shape.
///
/// The first [`IncrementalSolver::solve_epoch`] runs a full gather; subsequent
/// epochs refill only the dirty closure and re-trace the coloring through the
/// workspace's streaming buffers — bit-identical to a from-scratch solve, with
/// zero heap allocations once warm.
#[derive(Debug, Default)]
pub struct IncrementalSolver {
    workspace: SolverWorkspace,
    /// `(n_switches, budget)` the workspace's tables currently describe.
    shape: Option<(usize, usize)>,
}

impl IncrementalSolver {
    /// Creates a cold solver (the first epoch warms it).
    pub fn new() -> Self {
        IncrementalSolver::default()
    }

    /// Re-solves the instance after its pending events: incrementally when the
    /// shape is unchanged, from scratch otherwise. Consumes the instance's
    /// dirty set.
    pub fn solve_epoch(&mut self, instance: &mut DynamicInstance) -> EpochSolve {
        let DynamicInstance {
            tree,
            budget,
            dirty,
            ..
        } = instance;
        let k = *budget;
        let n = tree.n_switches();
        let incremental = self.shape == Some((n, k)) && !dirty.budget_changed;
        // Arg 1 = incremental epoch, 0 = full re-gather: the trace exporter
        // makes warm vs cold epochs distinguishable at a glance.
        let _solve = soar_obs::span!("epoch_solve", u64::from(incremental));
        if incremental {
            let closure = dirty.closure(tree);
            self.workspace.gather_update(tree, k, closure);
        } else {
            self.workspace.gather_auto(tree, k);
            self.shape = Some((n, k));
        }
        dirty.reset_epoch();
        let (cost, _) = self.workspace.trace_best(tree);
        EpochSolve {
            cost,
            all_red_cost: self.workspace.tables().optimum_with_exactly(0),
            blue_used: self.workspace.coloring().n_blue(),
            incremental,
            dp: DpStats::from_workspace(&self.workspace),
        }
    }

    /// The placement of the most recent epoch (empty before the first).
    pub fn coloring(&self) -> &Coloring {
        self.workspace.coloring()
    }

    /// The DP tables of the most recent epoch — exactly what a from-scratch
    /// gather of the same snapshot would produce.
    pub fn tables(&self) -> &soar_core::GatherTables {
        self.workspace.tables()
    }
}

/// Per-epoch cross-checking mode of the [`OnlineDriver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verify {
    /// No cross-checking (the production mode).
    #[default]
    None,
    /// Re-solve every epoch from scratch and assert the cost and coloring are
    /// identical.
    Solution,
    /// Re-gather every epoch from scratch and assert the **full DP tables**
    /// are bit-identical (the strongest check; implies `Solution`).
    Tables,
}

/// One row of the placement trajectory emitted by the [`OnlineDriver`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Number of events applied this epoch.
    pub events: usize,
    /// Optimal utilization after the epoch's events.
    pub cost: f64,
    /// The all-red baseline of the same snapshot.
    pub all_red_cost: f64,
    /// Number of blue switches used.
    pub blue_used: usize,
    /// Switches whose color changed relative to the previous epoch (epoch 0
    /// counts against the all-red start).
    pub moves: usize,
    /// Whether the epoch was solved incrementally.
    pub incremental: bool,
    /// DP cells the epoch's gather actually wrote.
    pub cells_written: usize,
    /// DP cells a from-scratch gather would have written.
    pub cells_full: usize,
    /// Workspace buffer (re)allocations of the epoch — 0 once warm.
    pub alloc_events: usize,
}

impl EpochMetrics {
    /// Cost normalized to the epoch's own all-red baseline (`1.0` when there
    /// is no traffic).
    pub fn normalized_cost(&self) -> f64 {
        if self.all_red_cost == 0.0 {
            1.0
        } else {
            self.cost / self.all_red_cost
        }
    }
}

/// The placement trajectory of a replayed churn timeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnReport {
    /// Per-epoch metrics, in replay order.
    pub epochs: Vec<EpochMetrics>,
}

impl ChurnReport {
    /// Number of epochs replayed.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether no epoch was replayed.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total placement moves across the timeline.
    pub fn total_moves(&self) -> usize {
        self.epochs.iter().map(|e| e.moves).sum()
    }

    /// The headline saving: total DP cells a from-scratch re-solve of every
    /// epoch would write, divided by the cells actually written. ≥ 1; grows
    /// with tree size for localized churn.
    pub fn cells_saving_factor(&self) -> f64 {
        let written: usize = self.epochs.iter().map(|e| e.cells_written).sum();
        let full: usize = self.epochs.iter().map(|e| e.cells_full).sum();
        if written == 0 {
            f64::INFINITY
        } else {
            full as f64 / written as f64
        }
    }
}

/// Replays a [`ChurnTimeline`] against a [`DynamicInstance`] with an
/// [`IncrementalSolver`], collecting the placement trajectory.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineDriver {
    /// Per-epoch cross-checking against a from-scratch solve.
    pub verify: Verify,
}

impl OnlineDriver {
    /// A driver without per-epoch verification.
    pub fn new() -> Self {
        OnlineDriver::default()
    }

    /// A driver that cross-checks every epoch at the given strength.
    pub fn with_verification(verify: Verify) -> Self {
        OnlineDriver { verify }
    }

    /// Applies each epoch's events and re-solves, returning the trajectory.
    ///
    /// # Panics
    ///
    /// With [`Verify::Solution`] / [`Verify::Tables`], panics if an
    /// incremental epoch ever deviates from the from-scratch solve of the same
    /// snapshot — that would be a solver bug, not an input error.
    pub fn run(
        &self,
        instance: &mut DynamicInstance,
        timeline: &[Epoch],
    ) -> Result<ChurnReport, OnlineError> {
        let mut solver = IncrementalSolver::new();
        let mut previous = Coloring::all_red(instance.n_switches());
        let mut report = ChurnReport::default();
        for (epoch, events) in timeline.iter().enumerate() {
            instance.apply_epoch(events)?;
            let outcome = solver.solve_epoch(instance);
            self.verify_epoch(epoch, instance, &solver, &outcome);
            let moves = solver.coloring().count_differences(&previous);
            previous.copy_from(solver.coloring());
            report.epochs.push(EpochMetrics {
                epoch,
                events: events.len(),
                cost: outcome.cost,
                all_red_cost: outcome.all_red_cost,
                blue_used: outcome.blue_used,
                moves,
                incremental: outcome.incremental,
                cells_written: outcome.dp.cells_written,
                cells_full: outcome.dp.table_cells,
                alloc_events: outcome.dp.alloc_events,
            });
        }
        Ok(report)
    }

    fn verify_epoch(
        &self,
        epoch: usize,
        instance: &DynamicInstance,
        solver: &IncrementalSolver,
        outcome: &EpochSolve,
    ) {
        match self.verify {
            Verify::None => {}
            Verify::Solution => {
                let fresh = soar_core::solve(instance.tree(), instance.budget());
                assert_eq!(
                    outcome.cost, fresh.cost,
                    "epoch {epoch}: incremental cost deviates from a fresh solve"
                );
                assert_eq!(
                    *solver.coloring(),
                    fresh.coloring,
                    "epoch {epoch}: incremental coloring deviates from a fresh solve"
                );
            }
            Verify::Tables => {
                let fresh = soar_core::soar_gather(instance.tree(), instance.budget());
                assert_eq!(
                    *solver.tables(),
                    fresh,
                    "epoch {epoch}: incremental DP tables deviate from a fresh gather"
                );
                let (fresh_coloring, fresh_cost) = soar_core::soar_color(instance.tree(), &fresh);
                assert_eq!(outcome.cost, fresh_cost, "epoch {epoch}: cost deviates");
                assert_eq!(
                    *solver.coloring(),
                    fresh_coloring,
                    "epoch {epoch}: coloring deviates"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_multitenant::churn::ChurnModel;
    use soar_topology::builders;

    fn bt_with_loads(n: usize, seed: u64) -> Tree {
        let mut tree = builders::complete_binary_tree_bt(n);
        let mut rng = StdRng::seed_from_u64(seed);
        tree.apply_leaf_loads(&soar_topology::load::LoadSpec::paper_uniform(), &mut rng);
        tree
    }

    #[test]
    fn dirty_closure_is_ancestor_closed_and_deepest_first() {
        let tree = builders::complete_binary_tree(15);
        let mut dirty = DirtyTracker::new(15);
        dirty.mark(9); // a depth-3 leaf: closure is its whole root path
        dirty.mark(9); // marking twice is idempotent
        let closure: Vec<NodeId> = dirty.closure(&tree).to_vec();
        assert_eq!(closure, vec![9, 4, 1, 0]);
        dirty.reset_epoch();
        assert!(dirty.closure(&tree).is_empty());

        // Two leaves under one internal node share the ancestor suffix.
        dirty.mark(9);
        dirty.mark(10);
        let closure: Vec<NodeId> = dirty.closure(&tree).to_vec();
        assert_eq!(closure, vec![9, 10, 4, 1, 0]);
    }

    #[test]
    fn events_mutate_loads_and_are_validated() {
        let tree = bt_with_loads(32, 1);
        let mut instance = DynamicInstance::new(&tree, 4);
        let leaf = tree.leaves().next().unwrap();
        let internal = tree.internal_nodes().next().unwrap();
        let before = instance.tree().load(leaf);

        instance
            .apply(&ChurnEvent::LeafRateChange { leaf, load: 17 })
            .unwrap();
        assert_eq!(instance.tree().load(leaf), 17);
        instance
            .apply(&ChurnEvent::TenantArrive {
                tenant: 5,
                loads: vec![(leaf, 3)],
            })
            .unwrap();
        assert_eq!(instance.tree().load(leaf), 20, "tenant load stacks on top");
        assert_eq!(instance.active_tenants(), vec![5]);
        instance
            .apply(&ChurnEvent::TenantDepart { tenant: 5 })
            .unwrap();
        assert_eq!(instance.tree().load(leaf), 17);
        let _ = before;

        assert_eq!(
            instance.apply(&ChurnEvent::LeafRateChange {
                leaf: internal,
                load: 1
            }),
            Err(OnlineError::NotALeaf(internal))
        );
        assert_eq!(
            instance.apply(&ChurnEvent::LeafRateChange { leaf: 999, load: 1 }),
            Err(OnlineError::UnknownSwitch(999))
        );
        assert_eq!(
            instance.apply(&ChurnEvent::TenantDepart { tenant: 42 }),
            Err(OnlineError::UnknownTenant(42))
        );
        instance
            .apply(&ChurnEvent::TenantArrive {
                tenant: 7,
                loads: vec![(leaf, 1)],
            })
            .unwrap();
        assert_eq!(
            instance.apply(&ChurnEvent::TenantArrive {
                tenant: 7,
                loads: vec![(leaf, 1)],
            }),
            Err(OnlineError::DuplicateTenant(7))
        );
    }

    #[test]
    fn incremental_epochs_match_fresh_solves_and_save_cells() {
        let tree = bt_with_loads(128, 3);
        let timeline =
            ChurnModel::paper_default().generate(&tree, 12, &mut StdRng::seed_from_u64(9));
        let mut instance = DynamicInstance::new(&tree, 8);
        let report = OnlineDriver::with_verification(Verify::Tables)
            .run(&mut instance, &timeline)
            .unwrap();
        assert_eq!(report.len(), 12);
        assert!(!report.epochs[0].incremental, "first epoch is a full solve");
        assert_eq!(report.epochs[0].cells_written, report.epochs[0].cells_full);
        for epoch in &report.epochs[1..] {
            assert!(epoch.incremental);
            assert!(
                epoch.cells_written < epoch.cells_full,
                "epoch {}: {} vs {}",
                epoch.epoch,
                epoch.cells_written,
                epoch.cells_full
            );
            assert_eq!(epoch.alloc_events, 0, "warm epochs are allocation-free");
            assert!(epoch.normalized_cost() <= 1.0 + 1e-9);
        }
        assert!(report.cells_saving_factor() > 1.0);
        assert!(report.total_moves() > 0, "churn moves the placement");
    }

    #[test]
    fn failure_events_stay_incremental_and_bit_identical() {
        let tree = bt_with_loads(128, 7);
        let internal = tree
            .internal_nodes()
            .find(|&v| v != soar_topology::ROOT)
            .unwrap();
        let leaf = tree.leaves().next().unwrap();
        let timeline: ChurnTimeline = vec![
            vec![],
            // A switch exhausts its compute capacity: forwarding-only.
            vec![ChurnEvent::SwitchAvailability {
                switch: internal,
                available: false,
            }],
            // Its up-link degrades to half rate while it is down.
            vec![ChurnEvent::LinkRateChange {
                switch: internal,
                rate: 0.5,
            }],
            // Capacity recovers; a leaf link degrades in the same epoch.
            vec![
                ChurnEvent::SwitchAvailability {
                    switch: internal,
                    available: true,
                },
                ChurnEvent::LinkRateChange {
                    switch: leaf,
                    rate: 0.25,
                },
            ],
            // Repair back to the original rate.
            vec![ChurnEvent::LinkRateChange {
                switch: internal,
                rate: 1.0,
            }],
        ];
        let mut instance = DynamicInstance::new(&tree, 6);
        let report = OnlineDriver::with_verification(Verify::Tables)
            .run(&mut instance, &timeline)
            .unwrap();
        for epoch in &report.epochs[1..] {
            assert!(epoch.incremental, "epoch {} went full", epoch.epoch);
            assert!(
                epoch.cells_written < epoch.cells_full,
                "epoch {}: failure events must not touch the whole table",
                epoch.epoch
            );
            assert_eq!(epoch.alloc_events, 0, "warm epochs are allocation-free");
        }
        assert!(instance.tree().available(internal));
        assert_eq!(instance.tree().rate(internal), 1.0);
        assert_eq!(instance.tree().rate(leaf), 0.25);
    }

    #[test]
    fn degraded_switch_is_never_colored_blue() {
        let tree = bt_with_loads(64, 11);
        let mut instance = DynamicInstance::new(&tree, 8);
        let mut solver = IncrementalSolver::new();
        let _ = solver.solve_epoch(&mut instance);
        // Exhaust every switch the first solve colored blue: the re-solve must
        // degrade all of them to forwarding-only.
        let blues: Vec<NodeId> = (0..tree.n_switches())
            .filter(|&v| solver.coloring().is_blue(v))
            .collect();
        assert!(!blues.is_empty());
        for &v in &blues {
            instance
                .apply(&ChurnEvent::SwitchAvailability {
                    switch: v,
                    available: false,
                })
                .unwrap();
        }
        let outcome = solver.solve_epoch(&mut instance);
        assert!(outcome.incremental);
        for &v in &blues {
            assert!(
                !solver.coloring().is_blue(v),
                "switch {v} is exhausted but still aggregating"
            );
        }
        let fresh = soar_core::solve(instance.tree(), instance.budget());
        assert_eq!(outcome.cost, fresh.cost);
    }

    #[test]
    fn failure_events_are_validated() {
        let tree = bt_with_loads(32, 13);
        let mut instance = DynamicInstance::new(&tree, 4);
        assert_eq!(
            instance.apply(&ChurnEvent::SwitchAvailability {
                switch: 999,
                available: false
            }),
            Err(OnlineError::UnknownSwitch(999))
        );
        assert_eq!(
            instance.apply(&ChurnEvent::LinkRateChange {
                switch: 999,
                rate: 1.0
            }),
            Err(OnlineError::UnknownSwitch(999))
        );
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                instance.apply(&ChurnEvent::LinkRateChange {
                    switch: 1,
                    rate: bad
                }),
                Err(OnlineError::InvalidRate(1)),
                "rate {bad} must be rejected"
            );
        }
        // Rejected events leave the instance clean: the next solve is full
        // (first) then a no-op epoch stays incremental with zero cells.
        let mut solver = IncrementalSolver::new();
        let _ = solver.solve_epoch(&mut instance);
        let outcome = solver.solve_epoch(&mut instance);
        assert!(outcome.incremental);
        assert_eq!(outcome.dp.cells_written, 0);
    }

    #[test]
    fn budget_changes_force_a_full_resolve_then_go_incremental_again() {
        let tree = bt_with_loads(64, 5);
        let leaf = tree.leaves().next().unwrap();
        let timeline: ChurnTimeline = vec![
            vec![],
            vec![ChurnEvent::BudgetChange { budget: 6 }],
            vec![ChurnEvent::LeafRateChange { leaf, load: 40 }],
        ];
        let mut instance = DynamicInstance::new(&tree, 3);
        let report = OnlineDriver::with_verification(Verify::Tables)
            .run(&mut instance, &timeline)
            .unwrap();
        assert!(!report.epochs[0].incremental);
        assert!(
            !report.epochs[1].incremental,
            "a budget change reshapes the DP tables"
        );
        assert!(report.epochs[2].incremental);
        assert_eq!(instance.budget(), 6);
        // Raising the budget cannot hurt.
        assert!(report.epochs[1].cost <= report.epochs[0].cost + 1e-9);
    }

    #[test]
    fn a_no_event_epoch_is_free_and_stable() {
        let tree = bt_with_loads(64, 8);
        let mut instance = DynamicInstance::new(&tree, 4);
        let timeline: ChurnTimeline = vec![vec![], vec![]];
        let report = OnlineDriver::with_verification(Verify::Solution)
            .run(&mut instance, &timeline)
            .unwrap();
        assert_eq!(report.epochs[1].cells_written, 0, "nothing dirty, no work");
        assert_eq!(report.epochs[1].moves, 0);
        assert_eq!(report.epochs[1].cost, report.epochs[0].cost);
    }

    #[test]
    fn image_restore_reproduces_solver_state_bit_for_bit() {
        let tree = bt_with_loads(64, 21);
        let mut instance = DynamicInstance::new(&tree, 5);
        let leaf = tree.leaves().next().unwrap();
        let internal = tree
            .internal_nodes()
            .find(|&v| v != soar_topology::ROOT)
            .unwrap();
        for event in [
            ChurnEvent::LeafRateChange { leaf, load: 33 },
            ChurnEvent::TenantArrive {
                tenant: 2,
                loads: vec![(leaf, 4)],
            },
            ChurnEvent::SwitchAvailability {
                switch: internal,
                available: false,
            },
            ChurnEvent::LinkRateChange {
                switch: internal,
                rate: 0.3,
            },
            ChurnEvent::BudgetChange { budget: 7 },
        ] {
            instance.apply(&event).unwrap();
        }

        let image = instance.image();
        let mut restored = DynamicInstance::new(&tree, 5);
        restored.restore_image(&image);

        assert_eq!(restored.budget(), 7);
        assert_eq!(restored.active_tenants(), vec![2]);
        for v in 0..tree.n_switches() {
            assert_eq!(restored.tree().load(v), instance.tree().load(v), "load {v}");
            assert_eq!(
                restored.tree().rate(v).to_bits(),
                instance.tree().rate(v).to_bits(),
                "rate {v}"
            );
            assert_eq!(
                restored.tree().available(v),
                instance.tree().available(v),
                "availability {v}"
            );
        }
        // Solves of original and restored instance are bit-identical, and the
        // restored instance keeps absorbing events (incl. a departure of the
        // restored tenant registry's entry).
        let a = soar_core::solve(instance.tree(), instance.budget());
        let b = soar_core::solve(restored.tree(), restored.budget());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.coloring, b.coloring);
        restored
            .apply(&ChurnEvent::TenantDepart { tenant: 2 })
            .unwrap();
        instance
            .apply(&ChurnEvent::TenantDepart { tenant: 2 })
            .unwrap();
        assert_eq!(restored.tree().load(leaf), instance.tree().load(leaf));
        // A restored instance's first solve is full, then incremental again.
        let mut solver = IncrementalSolver::new();
        let _ = solver.solve_epoch(&mut restored);
        let first = solver.solve_epoch(&mut restored);
        assert!(first.incremental);
    }

    #[test]
    fn snapshot_hands_the_current_state_to_the_offline_api() {
        let tree = bt_with_loads(32, 2);
        let leaf = tree.leaves().next().unwrap();
        let mut instance = DynamicInstance::new(&tree, 2);
        instance
            .apply(&ChurnEvent::LeafRateChange { leaf, load: 30 })
            .unwrap();
        let snapshot = instance.snapshot();
        assert_eq!(snapshot.budget(), 2);
        assert_eq!(snapshot.tree().load(leaf), 30);
        use soar_core::api::Solver as _;
        let mut solver = IncrementalSolver::new();
        let outcome = solver.solve_epoch(&mut instance);
        let offline = soar_core::api::SoarSolver.solve(&snapshot).solution;
        assert_eq!(outcome.cost, offline.cost);
        assert_eq!(*solver.coloring(), offline.coloring);
    }
}
