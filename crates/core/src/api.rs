//! The unified **Instance / Solver** API.
//!
//! Every experiment in the SOAR paper solves a φ-BIC instance `(T, L, Λ, k)` under
//! some placement policy. This module makes that shape first-class:
//!
//! * [`Instance`] — an immutable value type bundling the topology, loads, link
//!   rates, availability set and budget. Built either from an existing
//!   [`Tree`] or from a declarative [`TopologySpec`] + [`LoadSpec`] +
//!   [`RateScheme`] + seed via [`Instance::builder`], so random scenarios are
//!   reproducible from a handful of plain values.
//! * [`Solver`] — `fn solve(&self, &Instance) -> SolveReport`, implemented by the
//!   optimal SOAR solver ([`SoarSolver`]), the exhaustive oracle
//!   ([`BruteForceSolver`]) and every placement [`Strategy`] (via
//!   [`StrategySolver`] or the blanket `impl Solver for Strategy`).
//! * [`solvers`] — a string-keyed registry ([`solvers::by_name`]) so benches and
//!   CLIs can enumerate contenders generically.
//! * [`SolveReport`] — the [`Solution`] plus wall time, DP-table statistics and the
//!   cost normalized to the instance's all-red baseline. [`DpStats`] includes the
//!   workspace's allocation count, which is **0** for every steady-state solve.
//! * [`solve_batch`] / [`sweep_budgets`] / [`sweep_budgets_batch`] — batch entry
//!   points that fan instances out across the [`soar_pool`] work-stealing pool
//!   and reuse one SOAR-Gather pass across all budgets of a sweep. Every pool
//!   worker carries a warm per-thread
//!   [`SolverWorkspace`](crate::workspace::SolverWorkspace), so batches run
//!   allocation-free after each worker's first instance, and large instances
//!   additionally parallelize the gather *within* the tree, level by level.
//!
//! ```
//! use soar_core::api::{solvers, Instance, Solver, SoarSolver};
//! use soar_core::api::TopologySpec;
//! use soar_topology::load::LoadSpec;
//!
//! // The paper's BT(64) scenario with power-law rack sizes, reproducible by seed.
//! let instance = Instance::builder()
//!     .topology(TopologySpec::CompleteBinaryBt { n: 64 })
//!     .leaf_loads(LoadSpec::paper_power_law())
//!     .seed(7)
//!     .budget(4)
//!     .build()
//!     .unwrap();
//!
//! let optimal = SoarSolver.solve(&instance);
//! for solver in solvers::all() {
//!     let report = solver.solve(&instance);
//!     // All-blue ignores the budget, so it is the only contender allowed to win.
//!     if solver.name() != "all-blue" {
//!         assert!(optimal.solution.cost <= report.solution.cost + 1e-9);
//!     }
//! }
//! ```

use crate::node_dp::DpKernel;
use crate::solver::{self, Solution};
use crate::strategies::Strategy;
use crate::workspace::{with_thread_workspace, SolverWorkspace};
use crate::{brute_force, tables::GatherTables};
use rand::rngs::StdRng;
use rand::SeedableRng;
use soar_reduce::{cost, Coloring};
use soar_topology::builders;
use soar_topology::load::{LoadPlacement, LoadSpec};
use soar_topology::rates::RateScheme;
use soar_topology::{NodeId, Tree, TreeError};
use std::fmt;
use std::time::{Duration, Instant};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Topology specifications
// ---------------------------------------------------------------------------

/// A declarative description of a topology, so whole scenarios can be expressed —
/// and persisted — as plain values. Random families are deterministic given the
/// instance seed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum TopologySpec {
    /// The paper's `BT(n)` complete binary tree (`n` counts the destination).
    CompleteBinaryBt {
        /// Size including the destination server; the switch tree has `n - 1` nodes.
        n: usize,
    },
    /// A complete `arity`-ary tree over `n_switches` switches.
    CompleteKary {
        /// Children per switch.
        arity: usize,
        /// Number of switches.
        n_switches: usize,
    },
    /// The paper's `SF(n)` scale-free preferential-attachment tree.
    ScaleFreeSf {
        /// Size including the destination server.
        n: usize,
    },
    /// A uniformly random recursive tree.
    RandomRecursive {
        /// Number of switches.
        n_switches: usize,
    },
    /// A random recursive tree whose switches have at most `max_children` children.
    RandomBoundedDegree {
        /// Number of switches.
        n_switches: usize,
        /// Maximum number of children per switch.
        max_children: usize,
    },
    /// A path (maximum height).
    Path {
        /// Number of switches.
        n_switches: usize,
    },
    /// A star (maximum branching).
    Star {
        /// Number of switches.
        n_switches: usize,
    },
    /// A two-tier ToR/aggregation topology.
    TwoTierFatTree {
        /// Number of aggregation switches under the core.
        aggs: usize,
        /// Number of ToR switches under each aggregation switch.
        tors_per_agg: usize,
    },
}

impl TopologySpec {
    /// Materializes the topology (unit rates, zero load, full availability).
    pub fn build(&self, rng: &mut StdRng) -> Tree {
        match *self {
            TopologySpec::CompleteBinaryBt { n } => builders::complete_binary_tree_bt(n),
            TopologySpec::CompleteKary { arity, n_switches } => {
                builders::complete_kary_tree(arity, n_switches)
            }
            TopologySpec::ScaleFreeSf { n } => builders::scale_free_tree_sf(n, rng),
            TopologySpec::RandomRecursive { n_switches } => builders::random_tree(n_switches, rng),
            TopologySpec::RandomBoundedDegree {
                n_switches,
                max_children,
            } => builders::random_tree_bounded_degree(n_switches, max_children, rng),
            TopologySpec::Path { n_switches } => builders::path(n_switches),
            TopologySpec::Star { n_switches } => builders::star(n_switches),
            TopologySpec::TwoTierFatTree { aggs, tors_per_agg } => {
                builders::two_tier_fat_tree(aggs, tors_per_agg)
            }
        }
    }

    /// A short label used for default instance names.
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::CompleteBinaryBt { n } => format!("BT({n})"),
            TopologySpec::CompleteKary { arity, n_switches } => {
                format!("K{arity}({n_switches})")
            }
            TopologySpec::ScaleFreeSf { n } => format!("SF({n})"),
            TopologySpec::RandomRecursive { n_switches } => format!("RR({n_switches})"),
            TopologySpec::RandomBoundedDegree {
                n_switches,
                max_children,
            } => format!("RB({n_switches},{max_children})"),
            TopologySpec::Path { n_switches } => format!("Path({n_switches})"),
            TopologySpec::Star { n_switches } => format!("Star({n_switches})"),
            TopologySpec::TwoTierFatTree { aggs, tors_per_agg } => {
                format!("TwoTier({aggs}x{tors_per_agg})")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

/// An immutable φ-BIC problem instance `(T, L, Λ, k)`.
///
/// The tree (with its loads, rates and availability set) and the budget are fixed at
/// construction; solvers never mutate an instance, which is what makes the batch
/// entry points trivially parallel. Construct via [`Instance::builder`] or
/// [`Instance::from_tree`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize))]
pub struct Instance {
    label: String,
    tree: Tree,
    budget: usize,
    /// The all-red baseline `φ(T, L, ∅)`, cached at construction (the instance is
    /// immutable) so report normalization never re-evaluates it. Serialized for
    /// informational value but **recomputed** on deserialization, so a hand-edited
    /// scenario file can never carry a baseline inconsistent with its tree.
    all_red_cost: f64,
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Instance {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // `all_red_cost` in the input (if any) is deliberately ignored; the baseline
        // is derived from the tree, and trusting a persisted copy would let stale or
        // hand-edited files skew every normalized cost computed from the instance.
        Ok(Instance::new(
            serde::field(value, "label")?,
            serde::field(value, "tree")?,
            serde::field(value, "budget")?,
        ))
    }
}

impl Instance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    fn new(label: String, tree: Tree, budget: usize) -> Self {
        let all_red_cost = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
        Instance {
            label,
            tree,
            budget,
            all_red_cost,
        }
    }

    /// Wraps an existing tree (loads, rates and Λ are read from it) with a budget.
    pub fn from_tree(tree: &Tree, budget: usize) -> Self {
        Instance::from_tree_owned(tree.clone(), budget)
    }

    /// Like [`Instance::from_tree`] but taking the tree by value, for callers that
    /// already hold a tree of their own (avoids a second clone).
    pub fn from_tree_owned(tree: Tree, budget: usize) -> Self {
        Instance::new(format!("tree({})", tree.n_switches()), tree, budget)
    }

    /// The topology (with loads, rates and the availability set Λ).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The aggregation-switch budget `k`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// A human-readable name for tables and logs.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of switches `n`.
    pub fn n_switches(&self) -> usize {
        self.tree.n_switches()
    }

    /// A copy of this instance with a different budget (topology shared by clone).
    pub fn with_budget(&self, budget: usize) -> Self {
        Instance {
            budget,
            ..self.clone()
        }
    }

    /// A copy of this instance with a different label.
    pub fn with_label(&self, label: impl Into<String>) -> Self {
        Instance {
            label: label.into(),
            ..self.clone()
        }
    }

    /// The all-red baseline cost `φ(T, L, ∅)` used for normalization (cached at
    /// construction).
    pub fn all_red_cost(&self) -> f64 {
        self.all_red_cost
    }
}

/// Errors raised by [`InstanceBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// Neither a tree nor a topology spec was provided.
    MissingTopology,
    /// Both an explicit tree and a topology spec were provided.
    ConflictingTopology,
    /// The topology itself failed to build.
    Tree(TreeError),
    /// An availability mask did not match the number of switches.
    AvailabilityLength {
        /// Length of the provided mask.
        mask: usize,
        /// Number of switches in the topology.
        switches: usize,
    },
    /// An unavailable-switch id was out of range.
    UnknownSwitch(NodeId),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::MissingTopology => {
                write!(f, "an instance needs a tree or a topology spec")
            }
            InstanceError::ConflictingTopology => {
                write!(f, "provide either a tree or a topology spec, not both")
            }
            InstanceError::Tree(e) => write!(f, "topology construction failed: {e}"),
            InstanceError::AvailabilityLength { mask, switches } => write!(
                f,
                "availability mask covers {mask} switches but the topology has {switches}"
            ),
            InstanceError::UnknownSwitch(v) => write!(f, "unknown switch id {v}"),
        }
    }
}

impl std::error::Error for InstanceError {}

impl From<TreeError> for InstanceError {
    fn from(e: TreeError) -> Self {
        InstanceError::Tree(e)
    }
}

/// Builder for [`Instance`]; see the [module docs](crate::api) for an example.
///
/// Random ingredients (random topologies, random load draws) are derived
/// deterministically from [`InstanceBuilder::seed`], so an instance is fully
/// reproducible from its builder arguments.
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    label: Option<String>,
    tree: Option<Tree>,
    topology: Option<TopologySpec>,
    loads: Option<(LoadSpec, LoadPlacement)>,
    rates: Option<RateScheme>,
    availability: Option<Vec<bool>>,
    unavailable: Vec<NodeId>,
    seed: u64,
    budget: usize,
}

impl InstanceBuilder {
    /// Uses an existing tree as the topology (its loads/rates/Λ are kept unless
    /// overridden by the other builder methods).
    pub fn tree(mut self, tree: &Tree) -> Self {
        self.tree = Some(tree.clone());
        self
    }

    /// Uses a declarative topology spec.
    pub fn topology(mut self, spec: TopologySpec) -> Self {
        self.topology = Some(spec);
        self
    }

    /// Draws loads from `spec` with the given placement.
    pub fn loads(mut self, spec: LoadSpec, placement: LoadPlacement) -> Self {
        self.loads = Some((spec, placement));
        self
    }

    /// Draws loads from `spec` on the leaf (ToR) switches — the Sec. 5 setting.
    pub fn leaf_loads(self, spec: LoadSpec) -> Self {
        self.loads(spec, LoadPlacement::Leaves)
    }

    /// Applies a link-rate scheme.
    pub fn rates(mut self, scheme: RateScheme) -> Self {
        self.rates = Some(scheme);
        self
    }

    /// Replaces the availability mask Λ wholesale.
    pub fn availability(mut self, mask: Vec<bool>) -> Self {
        self.availability = Some(mask);
        self
    }

    /// Marks individual switches as unavailable (applied after any mask).
    pub fn unavailable(mut self, switches: impl IntoIterator<Item = NodeId>) -> Self {
        self.unavailable.extend(switches);
        self
    }

    /// Seed for all randomized ingredients (topology and load draws).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The aggregation-switch budget `k` (defaults to 0).
    pub fn budget(mut self, k: usize) -> Self {
        self.budget = k;
        self
    }

    /// A human-readable name (defaults to the topology label).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Materializes the immutable [`Instance`].
    pub fn build(self) -> Result<Instance, InstanceError> {
        let default_label = match (&self.tree, &self.topology) {
            (Some(_), Some(_)) => return Err(InstanceError::ConflictingTopology),
            (None, None) => return Err(InstanceError::MissingTopology),
            (Some(tree), None) => format!("tree({})", tree.n_switches()),
            (None, Some(spec)) => format!("{}#{}", spec.label(), self.seed),
        };
        let mut tree = match (self.tree, &self.topology) {
            (Some(tree), None) => tree,
            (None, Some(spec)) => {
                let mut topo_rng = StdRng::seed_from_u64(self.seed);
                spec.build(&mut topo_rng)
            }
            _ => unreachable!("checked above"),
        };
        if let Some((spec, placement)) = &self.loads {
            // A distinct stream so load draws do not depend on how many random
            // numbers the topology consumed.
            let mut load_rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x10AD));
            tree.apply_loads(spec, *placement, &mut load_rng);
        }
        if let Some(scheme) = &self.rates {
            tree.apply_rates(scheme);
        }
        if let Some(mask) = &self.availability {
            if mask.len() != tree.n_switches() {
                return Err(InstanceError::AvailabilityLength {
                    mask: mask.len(),
                    switches: tree.n_switches(),
                });
            }
            tree.set_availability(mask);
        }
        for &v in &self.unavailable {
            if v >= tree.n_switches() {
                return Err(InstanceError::UnknownSwitch(v));
            }
            tree.set_available(v, false);
        }
        Ok(Instance::new(
            self.label.unwrap_or(default_label),
            tree,
            self.budget,
        ))
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Statistics of the dynamic-programming tables behind a SOAR solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DpStats {
    /// Number of per-switch tables (= number of switches).
    pub n_switches: usize,
    /// The budget the tables were computed for.
    pub budget: usize,
    /// Total number of `X(ℓ, i)` cells across all tables.
    pub table_cells: usize,
    /// Approximate heap footprint of the tables in bytes.
    pub table_bytes: usize,
    /// High-water heap footprint of the solver workspace (DP arena + scratch)
    /// over its lifetime, in bytes.
    #[cfg_attr(feature = "serde", serde(default))]
    pub arena_peak_bytes: usize,
    /// Buffer (re)allocations the gather behind this report performed — **0 when
    /// the solve replayed a warm [`SolverWorkspace`]**, which is the steady state
    /// of every batch/sweep entry point (and the headline property of the
    /// allocation-free gather: no per-node clones, no per-node scratch).
    #[cfg_attr(feature = "serde", serde(default))]
    pub alloc_events: usize,
    /// `X` cells the gather behind this report actually wrote. Equals
    /// `table_cells` for a from-scratch gather; an **incremental** update
    /// (`SolverWorkspace::gather_update`, the `soar-online` epoch path) writes
    /// only the dirty nodes' cells — the ratio `table_cells / cells_written` is
    /// the incremental-solve speedup reported by the `dynamic_churn` bench.
    #[cfg_attr(feature = "serde", serde(default))]
    pub cells_written: usize,
    /// The effective `mCost` kernel the gather ran (serialized as its stable
    /// name: `"scalar" | "pruned" | "tiled"`). See
    /// [`DpKernel`](crate::node_dp::DpKernel).
    #[cfg_attr(feature = "serde", serde(default))]
    pub kernel: DpKernel,
    /// Column tiles the tiled kernel executed (0 for the other kernels).
    #[cfg_attr(feature = "serde", serde(default))]
    pub tiles: usize,
    /// Split candidates the monotonicity-based pruning skipped relative to the
    /// full quadratic arg-min search (0 for the scalar kernel). Deterministic
    /// for a given instance shape and kernel.
    #[cfg_attr(feature = "serde", serde(default))]
    pub pruned_splits: usize,
}

impl DpStats {
    /// Captures the statistics of a bare gather pass (no workspace: the
    /// allocation counters are not tracked and read 0).
    pub fn from_tables(tables: &GatherTables) -> Self {
        DpStats {
            n_switches: tables.n_switches(),
            budget: tables.k,
            table_cells: tables.table_cells(),
            table_bytes: tables.memory_bytes(),
            arena_peak_bytes: tables.memory_bytes(),
            alloc_events: 0,
            cells_written: tables.table_cells(),
            kernel: DpKernel::Auto.resolve(),
            tiles: 0,
            pruned_splits: 0,
        }
    }

    /// Captures the statistics of the most recent gather of a workspace.
    pub fn from_workspace(workspace: &SolverWorkspace) -> Self {
        let tables = workspace.tables();
        DpStats {
            n_switches: tables.n_switches(),
            budget: tables.k,
            table_cells: tables.table_cells(),
            table_bytes: tables.memory_bytes(),
            arena_peak_bytes: workspace.peak_bytes(),
            alloc_events: workspace.last_alloc_events(),
            cells_written: workspace.last_cells_written(),
            kernel: workspace.last_kernel(),
            tiles: workspace.last_tiles(),
            pruned_splits: workspace.last_pruned_splits(),
        }
    }
}

/// The outcome of one [`Solver`] run on one [`Instance`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SolveReport {
    /// Registry name of the solver that produced this report.
    pub solver: String,
    /// Label of the solved instance.
    pub instance: String,
    /// The placement and its cost.
    pub solution: Solution,
    /// Wall-clock time of the solve. For budget sweeps that share one gather pass,
    /// every report of the sweep carries the total sweep time.
    pub wall_time: Duration,
    /// `solution.cost` normalized to the instance's all-red baseline.
    pub normalized_cost: f64,
    /// DP-table statistics — present only for solvers that run SOAR-Gather.
    pub dp: Option<DpStats>,
}

impl SolveReport {
    /// Assembles a report for a solution of `instance`, normalizing the cost to
    /// the instance's (cached) all-red baseline (zero baseline normalizes to
    /// `1.0`; the convention lives in one shared helper crate-wide). Public so
    /// that [`Solver`] implementations outside this crate — such as the
    /// dataplane's distributed solver — assemble reports identically.
    pub fn new(
        solver: &str,
        instance: &Instance,
        solution: Solution,
        wall_time: Duration,
        dp: Option<DpStats>,
    ) -> Self {
        SolveReport {
            solver: solver.to_owned(),
            instance: instance.label().to_owned(),
            normalized_cost: solver::normalize(solution.cost, instance.all_red_cost()),
            solution,
            wall_time,
            dp,
        }
    }
}

// ---------------------------------------------------------------------------
// Solvers
// ---------------------------------------------------------------------------

/// A placement algorithm for φ-BIC instances.
///
/// Implementations must be deterministic for a given instance (randomized strategies
/// derive their RNG from a configurable seed), which keeps batch runs reproducible
/// regardless of thread scheduling.
pub trait Solver: Send + Sync {
    /// The solver's registry name (see [`solvers`]).
    fn name(&self) -> &str;

    /// Solves one instance.
    fn solve(&self, instance: &Instance) -> SolveReport;
}

/// The optimal SOAR solver (gather + color), reporting DP statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoarSolver;

impl Solver for SoarSolver {
    fn name(&self) -> &str {
        "soar"
    }

    fn solve(&self, instance: &Instance) -> SolveReport {
        let start = Instant::now();
        with_thread_workspace(|ws| {
            let solution = ws.solve(instance.tree(), instance.budget());
            let wall_time = start.elapsed();
            SolveReport::new(
                self.name(),
                instance,
                solution,
                wall_time,
                Some(DpStats::from_workspace(ws)),
            )
        })
    }
}

/// The exhaustive oracle. Only usable on small instances (see
/// [`crate::brute::MAX_SUBSETS`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BruteForceSolver;

impl Solver for BruteForceSolver {
    fn name(&self) -> &str {
        "brute-force"
    }

    fn solve(&self, instance: &Instance) -> SolveReport {
        let start = Instant::now();
        let solution = brute_force(instance.tree(), instance.budget());
        SolveReport::new(self.name(), instance, solution, start.elapsed(), None)
    }
}

/// Adapts a placement [`Strategy`] to the [`Solver`] interface.
///
/// Randomized strategies draw from an RNG seeded with `seed`, freshly per solve, so
/// repeated solves of the same instance give the same placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrategySolver {
    strategy: Strategy,
    seed: u64,
}

impl StrategySolver {
    /// Wraps a strategy with the default seed.
    pub fn new(strategy: Strategy) -> Self {
        StrategySolver { strategy, seed: 0 }
    }

    /// Wraps a strategy with an explicit seed for its random draws.
    pub fn with_seed(strategy: Strategy, seed: u64) -> Self {
        StrategySolver { strategy, seed }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }
}

/// Registry name of a strategy (lower-case, stable across releases).
fn strategy_key(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Soar => "soar",
        Strategy::Top => "top",
        Strategy::MaxLoad => "max-load",
        Strategy::MaxDegree => "max-degree",
        Strategy::Level => "level",
        Strategy::Random => "random",
        Strategy::Greedy => "greedy",
        Strategy::AllRed => "all-red",
        Strategy::AllBlue => "all-blue",
    }
}

impl Solver for StrategySolver {
    fn name(&self) -> &str {
        strategy_key(self.strategy)
    }

    fn solve(&self, instance: &Instance) -> SolveReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let start = Instant::now();
        let solution = self
            .strategy
            .solve(instance.tree(), instance.budget(), &mut rng);
        SolveReport::new(self.name(), instance, solution, start.elapsed(), None)
    }
}

impl Solver for Strategy {
    fn name(&self) -> &str {
        strategy_key(*self)
    }

    fn solve(&self, instance: &Instance) -> SolveReport {
        StrategySolver::new(*self).solve(instance)
    }
}

/// The string-keyed solver registry.
pub mod solvers {
    use super::{BruteForceSolver, SoarSolver, Solver, Strategy, StrategySolver};

    /// The registry names of all built-in solvers, in a stable order.
    pub const NAMES: [&str; 10] = [
        "soar",
        "brute-force",
        "top",
        "max-load",
        "max-degree",
        "level",
        "random",
        "greedy",
        "all-red",
        "all-blue",
    ];

    /// Looks a solver up by its registry name (case-insensitive; the paper's legend
    /// names — e.g. `"SOAR"`, `"Max"` — are accepted as aliases).
    pub fn by_name(name: &str) -> Option<Box<dyn Solver>> {
        let key = name.to_ascii_lowercase();
        let strategy =
            |s: Strategy| -> Option<Box<dyn Solver>> { Some(Box::new(StrategySolver::new(s))) };
        match key.as_str() {
            "soar" => Some(Box::new(SoarSolver)),
            "brute-force" | "brute" | "oracle" => Some(Box::new(BruteForceSolver)),
            "top" => strategy(Strategy::Top),
            "max-load" | "max" => strategy(Strategy::MaxLoad),
            "max-degree" => strategy(Strategy::MaxDegree),
            "level" => strategy(Strategy::Level),
            "random" => strategy(Strategy::Random),
            "greedy" => strategy(Strategy::Greedy),
            "all-red" | "all red" => strategy(Strategy::AllRed),
            "all-blue" | "all blue" => strategy(Strategy::AllBlue),
            _ => None,
        }
    }

    /// All registered solvers except the brute-force oracle (which cannot handle
    /// realistically sized instances), in the order of [`NAMES`].
    pub fn all() -> Vec<Box<dyn Solver>> {
        NAMES
            .iter()
            .filter(|&&name| name != "brute-force")
            .map(|&name| by_name(name).expect("every registry name resolves"))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Batch entry points
// ---------------------------------------------------------------------------

/// Maps `f` over `items` on the global [`soar_pool`] work-stealing pool,
/// preserving order. Used by every batch entry point; the pool's long-lived
/// workers each carry a warm per-thread [`SolverWorkspace`], so a batch of
/// same-shaped instances is solved allocation-free after each worker's first
/// item. With a single worker the call degrades to a plain sequential map.
fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    soar_pool::global().map(items, f)
}

/// Solves every instance with the given solver, fanning out across threads.
///
/// Reports come back in instance order and are bit-identical to sequential
/// per-instance [`Solver::solve`] calls (solvers are deterministic; wall times
/// differ, costs do not).
pub fn solve_batch(solver: &dyn Solver, instances: &[Instance]) -> Vec<SolveReport> {
    par_map(instances, |instance| solver.solve(instance))
}

/// Solves every `(solver, instance)` pair, fanning out across threads. The outer
/// result is indexed like `solvers`, the inner like `instances`.
pub fn solve_matrix(solvers: &[Box<dyn Solver>], instances: &[Instance]) -> Vec<Vec<SolveReport>> {
    // Flatten so small solver lists still saturate the thread pool.
    let pairs: Vec<(usize, usize)> = (0..solvers.len())
        .flat_map(|s| (0..instances.len()).map(move |i| (s, i)))
        .collect();
    let flat = par_map(&pairs, |&(s, i)| solvers[s].solve(&instances[i]));
    let mut out: Vec<Vec<SolveReport>> = (0..solvers.len()).map(|_| Vec::new()).collect();
    for ((s, _), report) in pairs.into_iter().zip(flat) {
        out[s].push(report);
    }
    out
}

/// Optimal solutions of one instance for **every** budget in `budgets`, from a
/// single SOAR-Gather pass at the largest budget (the "cost-vs-k curve" of
/// Figs. 6, 8 and 10 without re-running the DP per budget).
///
/// Every returned report carries the total sweep wall time and the shared DP
/// statistics; costs are identical to per-budget [`SoarSolver`] solves.
pub fn sweep_budgets(instance: &Instance, budgets: &[usize]) -> Vec<SolveReport> {
    let Some(&k_max) = budgets.iter().max() else {
        return Vec::new();
    };
    let start = Instant::now();
    with_thread_workspace(|ws| {
        ws.gather_auto(instance.tree(), k_max);
        // The "at most k" cost curve (shared epsilon logic lives in solver.rs).
        let curve = solver::prefix_min_curve(ws.tables());
        // Trace one coloring per *distinct* optimal blue count among the requested
        // budgets — the expensive SOAR-Color walk is skipped for budgets whose
        // optimum did not move, and for budgets the caller never asked about.
        // Traces stream through the workspace's reusable buffers (no per-trace
        // `Coloring` allocation); the single clone per distinct blue count is
        // what the returned `Solution`s own.
        let mut colorings: std::collections::HashMap<usize, Coloring> =
            std::collections::HashMap::new();
        let solutions: Vec<Solution> = budgets
            .iter()
            .map(|&k| {
                let (cost_k, j) = curve[k];
                let coloring = match colorings.entry(j) {
                    std::collections::hash_map::Entry::Occupied(entry) => entry.get().clone(),
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        ws.trace_exact(instance.tree(), j);
                        entry.insert(ws.coloring().clone()).clone()
                    }
                };
                Solution {
                    blue_used: coloring.n_blue(),
                    cost: cost_k,
                    coloring,
                    budget: k,
                }
            })
            .collect();
        let wall_time = start.elapsed();
        let dp = DpStats::from_workspace(ws);
        solutions
            .into_iter()
            .map(|solution| SolveReport::new("soar", instance, solution, wall_time, Some(dp)))
            .collect()
    })
}

/// [`sweep_budgets`] over many instances, fanned out across threads. The outer
/// result is indexed like `instances`, the inner like `budgets`.
pub fn sweep_budgets_batch(instances: &[Instance], budgets: &[usize]) -> Vec<Vec<SolveReport>> {
    par_map(instances, |instance| sweep_budgets(instance, budgets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_instance(k: usize) -> Instance {
        Instance::builder()
            .topology(TopologySpec::CompleteKary {
                arity: 2,
                n_switches: 7,
            })
            .loads(LoadSpec::Explicit(vec![2, 6, 5, 4]), LoadPlacement::Leaves)
            .budget(k)
            .label("fig2")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_reproduces_the_fig2_instance() {
        let instance = fig2_instance(2);
        assert_eq!(instance.n_switches(), 7);
        assert_eq!(instance.budget(), 2);
        assert_eq!(instance.label(), "fig2");
        assert_eq!(instance.all_red_cost(), 51.0);
        let report = SoarSolver.solve(&instance);
        assert_eq!(report.solution.cost, 20.0);
        assert_eq!(report.solver, "soar");
        assert!((report.normalized_cost - 20.0 / 51.0).abs() < 1e-12);
        let dp = report.dp.expect("SOAR reports DP stats");
        assert_eq!(dp.n_switches, 7);
        assert_eq!(dp.budget, 2);
        assert!(dp.table_cells > 0 && dp.table_bytes > 0);
    }

    #[test]
    fn builder_is_deterministic_per_seed() {
        let build = |seed| {
            Instance::builder()
                .topology(TopologySpec::ScaleFreeSf { n: 64 })
                .leaf_loads(LoadSpec::paper_uniform())
                .rates(RateScheme::paper_linear())
                .seed(seed)
                .budget(3)
                .build()
                .unwrap()
        };
        assert_eq!(build(5), build(5));
        assert_ne!(build(5), build(6));
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        assert_eq!(
            Instance::builder().budget(1).build().unwrap_err(),
            InstanceError::MissingTopology
        );
        let tree = builders::complete_binary_tree(3);
        assert_eq!(
            Instance::builder()
                .tree(&tree)
                .topology(TopologySpec::Path { n_switches: 2 })
                .build()
                .unwrap_err(),
            InstanceError::ConflictingTopology
        );
        assert!(matches!(
            Instance::builder()
                .tree(&tree)
                .availability(vec![true])
                .build()
                .unwrap_err(),
            InstanceError::AvailabilityLength {
                mask: 1,
                switches: 3
            }
        ));
        assert_eq!(
            Instance::builder()
                .tree(&tree)
                .unavailable([9])
                .build()
                .unwrap_err(),
            InstanceError::UnknownSwitch(9)
        );
    }

    #[test]
    fn availability_flows_into_solutions() {
        let tree = {
            let mut t = builders::complete_binary_tree(7);
            t.set_load(3, 2);
            t.set_load(4, 6);
            t.set_load(5, 5);
            t.set_load(6, 4);
            t
        };
        // Without switch 4 the k = 2 optimum changes away from {2, 4}.
        let restricted = Instance::builder()
            .tree(&tree)
            .unavailable([4])
            .budget(2)
            .build()
            .unwrap();
        let report = SoarSolver.solve(&restricted);
        assert!(!report.solution.coloring.is_blue(4));
        assert!(report.solution.cost > 20.0);
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        for name in solvers::NAMES {
            let solver = solvers::by_name(name).expect("registered");
            assert_eq!(solver.name(), name);
        }
        assert_eq!(solvers::by_name("SOAR").unwrap().name(), "soar");
        assert_eq!(solvers::by_name("Max").unwrap().name(), "max-load");
        assert_eq!(solvers::by_name("brute").unwrap().name(), "brute-force");
        assert!(solvers::by_name("nonsense").is_none());
        assert_eq!(solvers::all().len(), solvers::NAMES.len() - 1);
    }

    #[test]
    fn every_solver_beats_no_one_but_respects_the_instance() {
        let instance = fig2_instance(2);
        let optimal = SoarSolver.solve(&instance);
        for solver in solvers::all() {
            let report = solver.solve(&instance);
            if solver.name() == "all-blue" {
                // All-blue deliberately ignores the budget (unbounded reference).
                continue;
            }
            assert!(
                optimal.solution.cost <= report.solution.cost + 1e-9,
                "{} beat SOAR",
                solver.name()
            );
            assert!(report
                .solution
                .coloring
                .validate(instance.tree(), 2)
                .is_ok());
        }
    }

    #[test]
    fn strategy_implements_solver_directly() {
        let instance = fig2_instance(2);
        let report = Solver::solve(&Strategy::Level, &instance);
        assert_eq!(report.solver, "level");
        assert_eq!(report.solution.cost, 21.0);
    }

    #[test]
    fn batch_matches_sequential() {
        let instances: Vec<Instance> = (0..8)
            .map(|seed| {
                Instance::builder()
                    .topology(TopologySpec::CompleteBinaryBt { n: 32 })
                    .leaf_loads(LoadSpec::paper_power_law())
                    .seed(seed)
                    .budget(4)
                    .build()
                    .unwrap()
            })
            .collect();
        let batch = solve_batch(&SoarSolver, &instances);
        assert_eq!(batch.len(), instances.len());
        for (instance, report) in instances.iter().zip(&batch) {
            let sequential = SoarSolver.solve(instance);
            assert_eq!(sequential.solution, report.solution);
            assert_eq!(sequential.normalized_cost, report.normalized_cost);
        }
    }

    #[test]
    fn solve_matrix_covers_all_pairs() {
        let instances: Vec<Instance> = (0..3).map(|s| fig2_instance(s as usize)).collect();
        let contenders: Vec<Box<dyn Solver>> = vec![
            Box::new(SoarSolver),
            Box::new(StrategySolver::new(Strategy::Top)),
        ];
        let matrix = solve_matrix(&contenders, &instances);
        assert_eq!(matrix.len(), 2);
        for row in &matrix {
            assert_eq!(row.len(), 3);
        }
        for (report, instance) in matrix[0].iter().zip(&instances) {
            assert_eq!(report.solution, SoarSolver.solve(instance).solution);
        }
    }

    #[test]
    fn sweep_budgets_matches_per_budget_solves() {
        let instance = fig2_instance(0);
        let budgets = [0usize, 1, 2, 3, 4];
        let sweep = sweep_budgets(&instance, &budgets);
        assert_eq!(sweep.len(), budgets.len());
        let expected = [51.0, 35.0, 20.0, 15.0, 11.0];
        for ((&k, report), &want) in budgets.iter().zip(&sweep).zip(&expected) {
            assert_eq!(report.solution.cost, want, "budget {k}");
            assert_eq!(report.solution.budget, k);
            let direct = SoarSolver.solve(&instance.with_budget(k));
            assert_eq!(direct.solution.cost, report.solution.cost);
        }
        assert!(sweep_budgets(&instance, &[]).is_empty());
    }

    #[test]
    fn sweep_batch_is_consistent_with_single_sweeps() {
        let instances: Vec<Instance> = (0..5)
            .map(|seed| {
                Instance::builder()
                    .topology(TopologySpec::ScaleFreeSf { n: 48 })
                    .loads(LoadSpec::Constant(1), LoadPlacement::AllSwitches)
                    .seed(seed)
                    .build()
                    .unwrap()
            })
            .collect();
        let budgets = [0usize, 2, 4];
        let batch = sweep_budgets_batch(&instances, &budgets);
        for (instance, reports) in instances.iter().zip(&batch) {
            let single = sweep_budgets(instance, &budgets);
            let batch_costs: Vec<f64> = reports.iter().map(|r| r.solution.cost).collect();
            let single_costs: Vec<f64> = single.iter().map(|r| r.solution.cost).collect();
            assert_eq!(batch_costs, single_costs);
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert!(par_map::<usize, usize, _>(&[], |&x| x).is_empty());
    }
}
