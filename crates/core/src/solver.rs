//! High-level solving API for the φ-BIC problem.
//!
//! [`solve`] runs SOAR end to end (gather + color) and returns a [`Solution`]; the
//! lower-level pieces remain available through [`crate::gather`] and [`crate::color`]
//! for callers that want to reuse the DP tables (e.g. to trace colorings for several
//! budgets out of a single gather pass, as done by the scaling experiments).

use crate::color::{soar_color, soar_color_exact};
use crate::gather::soar_gather;
use crate::tables::GatherTables;
use soar_reduce::{cost, Coloring};
use soar_topology::Tree;

/// The outcome of solving a φ-BIC instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Solution {
    /// The chosen set of blue switches.
    pub coloring: Coloring,
    /// The utilization complexity `φ(T, L, U)` of that set.
    pub cost: f64,
    /// Number of blue switches actually used (`|U| ≤ k`).
    pub blue_used: usize,
    /// The budget the instance was solved for.
    pub budget: usize,
}

impl Solution {
    /// Builds a solution record from a coloring by evaluating its cost on the tree.
    pub fn from_coloring(tree: &Tree, coloring: Coloring, budget: usize) -> Self {
        let cost = cost::phi(tree, &coloring);
        Solution {
            blue_used: coloring.n_blue(),
            cost,
            coloring,
            budget,
        }
    }

    /// This solution's cost normalized to the all-red baseline of the same tree.
    pub fn normalized_cost(&self, tree: &Tree) -> f64 {
        let baseline = cost::phi(tree, &Coloring::all_red(tree.n_switches()));
        normalize(self.cost, baseline)
    }
}

/// Normalizes a cost to the all-red baseline, with the crate-wide convention that
/// a zero baseline (no traffic at all) normalizes to `1.0`. The single home of
/// that convention, shared by [`Solution::normalized_cost`], the reports of
/// [`crate::api`] and the comparisons of [`crate::analysis`].
pub(crate) fn normalize(cost: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        1.0
    } else {
        cost / baseline
    }
}

/// Solves the φ-BIC instance `(T, L, Λ, k)` optimally with SOAR
/// (Theorem 4.1: `O(n · h(T) · k²)` time).
///
/// The availability set Λ and the load are read from the tree itself
/// (see [`soar_topology::Tree::set_available`] / [`soar_topology::Tree::set_load`]).
///
/// Runs on the calling thread's persistent
/// [`SolverWorkspace`](crate::workspace::SolverWorkspace), so repeated solves on
/// one thread reuse a single warm DP arena and allocate nothing beyond the
/// returned [`Solution`]. The flip side: the arena stays resident between
/// solves (the shrink-on-idle policy reclaims it only across later solves). A
/// caller done solving on a thread can release it eagerly with
/// `with_thread_workspace(|ws| ws.clear())`.
pub fn solve(tree: &Tree, k: usize) -> Solution {
    crate::workspace::with_thread_workspace(|ws| ws.solve(tree, k))
}

/// Solves the instance and also returns the gather tables, so callers can extract
/// colorings for *every* budget `i ≤ k` without re-running the DP.
pub fn solve_with_tables(tree: &Tree, k: usize) -> (Solution, GatherTables) {
    let tables = soar_gather(tree, k);
    let (coloring, cost) = soar_color(tree, &tables);
    (
        Solution {
            blue_used: coloring.n_blue(),
            cost,
            coloring,
            budget: k,
        },
        tables,
    )
}

/// Given tables computed for budget `k`, extracts the optimal solution for every budget
/// `i = 0 ..= k` (the "cost-vs-k curve" used by Figs. 6, 8 and 10).
///
/// The optimum for budget `i` is the best exact-`j` value over `j ≤ i`, which is a
/// *prefix minimum* of `optimum_with_exactly` — so one running-minimum pass over
/// `i = 0 ..= k` suffices (the previous implementation rescanned `0 ..= i` per
/// budget, an `O(k²)` walk over the root row). The SOAR-Color traceback is also
/// run only when the optimum moves; budgets on a flat stretch of the curve reuse
/// the previous coloring (the traceback is deterministic, so it would reproduce
/// it verbatim anyway).
pub fn solutions_for_all_budgets(tree: &Tree, tables: &GatherTables) -> Vec<Solution> {
    let mut traced: Option<(usize, Coloring)> = None;
    prefix_min_curve(tables)
        .into_iter()
        .enumerate()
        .map(|(i, (cost, best_j))| {
            let coloring = match &traced {
                Some((j, coloring)) if *j == best_j => coloring.clone(),
                _ => {
                    let coloring = soar_color_exact(tree, tables, best_j);
                    traced = Some((best_j, coloring.clone()));
                    coloring
                }
            };
            Solution {
                blue_used: coloring.n_blue(),
                cost,
                coloring,
                budget: i,
            }
        })
        .collect()
}

/// The "at most `i`" cost curve from gathered tables: entry `i` is the prefix
/// minimum of `optimum_with_exactly` over `0 ..= i` together with the exact blue
/// count attaining it. The single home of the strict-improvement epsilon shared by
/// [`solutions_for_all_budgets`] and the budget sweeps of [`crate::api`].
pub(crate) fn prefix_min_curve(tables: &GatherTables) -> Vec<(f64, usize)> {
    let mut curve = Vec::with_capacity(tables.k + 1);
    let (mut best, mut best_j) = (f64::INFINITY, 0usize);
    for i in 0..=tables.k {
        let value = tables.optimum_with_exactly(i);
        if value < best - 1e-12 {
            best = value;
            best_j = i;
        }
        curve.push((best, best_j));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn solve_reproduces_fig3_optimal_costs() {
        let tree = fig2_tree();
        let expected = [51.0, 35.0, 20.0, 15.0, 11.0];
        for (k, &want) in expected.iter().enumerate() {
            let solution = solve(&tree, k);
            assert_eq!(solution.cost, want, "k = {k}");
            assert!(solution.blue_used <= k);
            assert_eq!(solution.budget, k);
            // The reported cost matches an independent evaluation of the coloring.
            assert_eq!(solution.cost, cost::phi(&tree, &solution.coloring));
        }
    }

    #[test]
    fn normalized_cost_is_relative_to_all_red() {
        let tree = fig2_tree();
        let solution = solve(&tree, 2);
        assert!((solution.normalized_cost(&tree) - 20.0 / 51.0).abs() < 1e-12);
    }

    #[test]
    fn from_coloring_builds_consistent_records() {
        let tree = fig2_tree();
        let coloring = Coloring::from_blue_nodes(7, [1, 2]).unwrap();
        let solution = Solution::from_coloring(&tree, coloring, 2);
        assert_eq!(solution.cost, 21.0);
        assert_eq!(solution.blue_used, 2);
    }

    #[test]
    fn all_budget_curve_is_monotone_and_matches_individual_solves() {
        let tree = fig2_tree();
        let (_, tables) = solve_with_tables(&tree, 7);
        let curve = solutions_for_all_budgets(&tree, &tables);
        assert_eq!(curve.len(), 8);
        let mut prev = f64::INFINITY;
        for (i, solution) in curve.iter().enumerate() {
            assert!(
                solution.cost <= prev + 1e-9,
                "cost must not increase with k"
            );
            prev = solution.cost;
            let fresh = solve(&tree, i);
            assert!((fresh.cost - solution.cost).abs() < 1e-9);
            assert_eq!(solution.cost, cost::phi(&tree, &solution.coloring));
        }
        // k = n: the all-blue bound of one message per link.
        assert_eq!(curve[7].cost, 7.0);
    }

    #[test]
    fn solve_on_larger_uniform_instance_stays_consistent() {
        use rand::SeedableRng;
        let mut tree = builders::complete_binary_tree_bt(64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        tree.apply_leaf_loads(&soar_topology::load::LoadSpec::paper_uniform(), &mut rng);
        for k in [0usize, 1, 2, 4, 8, 16] {
            let solution = solve(&tree, k);
            assert_eq!(solution.cost, cost::phi(&tree, &solution.coloring));
            assert!(solution.blue_used <= k);
        }
    }
}
