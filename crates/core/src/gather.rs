//! SOAR-Gather (Algorithm 3 of the paper): the bottom-up dynamic-programming pass.
//!
//! Scanning the tree from the leaves towards the root, every switch `v` computes — for
//! every possible distance `ℓ` to its closest blue ancestor (or the destination) and
//! every possible number `i` of blue nodes placed inside its subtree — the minimum
//! utilization its subtree can contribute, conditioned on `v` being blue or red
//! (Lemma 6.2). The child subtrees are folded in one at a time through the prefix
//! recursion `Y_v^m` (Lemma 6.1 / the `mCost` procedure), whose arg-min split is
//! recorded for the coloring phase.
//!
//! The implementation is an iterative post-order traversal (no recursion), so trees
//! with thousands of switches and heights in the tens are handled comfortably; the
//! complexity is `O(n · h(T) · k²)` time as in Theorem 4.1.

use crate::node_dp::compute_node_table;
use crate::tables::GatherTables;
use soar_topology::Tree;

/// Runs SOAR-Gather for budget `k` over the tree (its loads, rates and availability
/// set Λ) and returns the full set of DP tables.
pub fn soar_gather(tree: &Tree, k: usize) -> GatherTables {
    let mut tables = GatherTables::new(tree, k);
    for v in tree.post_order() {
        // Snapshot the children's X tables (already finalized by the post-order scan) —
        // this is exactly the information a child ships to its parent in the
        // distributed rendition of the algorithm.
        let children_x: Vec<Vec<f64>> = tree
            .children(v)
            .iter()
            .map(|&c| tables.node(c).x.clone())
            .collect();
        let table = compute_node_table(
            &tree.path_rho(v),
            tree.load(v),
            tree.available(v),
            k,
            &children_x,
        );
        tables.replace_node(v, table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{Color, INF};
    use soar_topology::{builders, Tree};

    /// The Fig. 2 / Fig. 5 instance: complete binary tree over 7 switches, leaf loads
    /// 2, 6, 5, 4, unit rates, Λ = S.
    fn fig5_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn leaf_tables_match_fig5() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 2);
        // Leaf with load 2 (node 3): rows ℓ = 0..3, columns i = 0..2.
        // Red row is ℓ·L, blue row is ℓ (for i ≥ 1); X is their minimum.
        for l in 0..4 {
            assert_eq!(tables.y(3, l, 0, Color::Red), 2.0 * l as f64);
            assert_eq!(tables.y(3, l, 0, Color::Blue), INF);
            assert_eq!(tables.x(3, l, 0), 2.0 * l as f64);
            for i in 1..=2 {
                assert_eq!(tables.y(3, l, i, Color::Blue), l as f64);
                assert_eq!(tables.x(3, l, i), (l as f64).min(2.0 * l as f64));
            }
        }
        // Leaf with load 6 (node 4): red row is 6ℓ.
        assert_eq!(tables.x(4, 1, 0), 6.0);
        assert_eq!(tables.x(4, 2, 0), 12.0);
        assert_eq!(tables.x(4, 3, 0), 18.0);
        assert_eq!(tables.x(4, 3, 1), 3.0);
        // Leaf with load 5 (node 5) and 4 (node 6).
        assert_eq!(tables.x(5, 2, 0), 10.0);
        assert_eq!(tables.x(6, 2, 0), 8.0);
    }

    #[test]
    fn internal_node_tables_match_fig5() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 2);
        // Left internal switch (node 1, above loads 2 and 6).
        // Fig. 5: X(ℓ=0, ·) = (8, 3, 2); X(ℓ=1, ·) = (16, 6, 4); X(ℓ=2, ·) = (24, 9, 5).
        assert_eq!(tables.x(1, 0, 0), 8.0);
        assert_eq!(tables.x(1, 0, 1), 3.0);
        assert_eq!(tables.x(1, 0, 2), 2.0);
        assert_eq!(tables.x(1, 1, 0), 16.0);
        assert_eq!(tables.x(1, 1, 1), 6.0);
        assert_eq!(tables.x(1, 1, 2), 4.0);
        assert_eq!(tables.x(1, 2, 0), 24.0);
        assert_eq!(tables.x(1, 2, 1), 9.0);
        assert_eq!(tables.x(1, 2, 2), 5.0);
        // Conditioned values reported in Fig. 5(a): Y(ℓ=1, i=1, B) = 9, Y(ℓ=2, i=1, B) = 10.
        assert_eq!(tables.y(1, 1, 1, Color::Blue), 9.0);
        assert_eq!(tables.y(1, 2, 1, Color::Blue), 10.0);
        assert_eq!(tables.y(1, 0, 0, Color::Red), 8.0);

        // Right internal switch (node 2, above loads 5 and 4).
        // Fig. 5: X(ℓ=0, ·) = (9, 5, 2); X(ℓ=1, ·) = (18, 10, 4).
        assert_eq!(tables.x(2, 0, 0), 9.0);
        assert_eq!(tables.x(2, 0, 1), 5.0);
        assert_eq!(tables.x(2, 0, 2), 2.0);
        assert_eq!(tables.x(2, 1, 0), 18.0);
        assert_eq!(tables.x(2, 1, 1), 10.0);
        assert_eq!(tables.x(2, 1, 2), 4.0);
        assert_eq!(tables.y(2, 1, 1, Color::Blue), 10.0);
        assert_eq!(tables.y(2, 2, 1, Color::Blue), 11.0);
    }

    #[test]
    fn root_table_yields_the_known_optima() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 4);
        // X_r(1, i) is the optimal utilization with exactly i blue nodes (Eq. 6):
        // all-red is 51; Fig. 3 reports 35, 20, 15, 11 for k = 1..4.
        assert_eq!(tables.optimum_with_exactly(0), 51.0);
        assert_eq!(tables.optimum_with_exactly(1), 35.0);
        assert_eq!(tables.optimum_with_exactly(2), 20.0);
        assert_eq!(tables.optimum_with_exactly(3), 15.0);
        assert_eq!(tables.optimum_with_exactly(4), 11.0);
        let (best_i, best) = tables.optimum();
        assert_eq!(best_i, 4);
        assert_eq!(best, 11.0);
        // The root's subtree-internal view (ℓ = 0) for i = 0 is the all-red cost minus
        // the 17 messages on the (r, d) link: 34, as printed in Fig. 5.
        assert_eq!(tables.x(0, 0, 0), 34.0);
        assert_eq!(tables.x(0, 0, 1), 24.0);
        assert_eq!(tables.x(0, 0, 2), 16.0);
    }

    #[test]
    fn unavailable_switches_are_never_counted_blue() {
        let mut tree = fig5_tree();
        // Make everything unavailable: the optimum for any k collapses to all-red.
        for v in 0..tree.n_switches() {
            tree.set_available(v, false);
        }
        let tables = soar_gather(&tree, 3);
        for i in 0..=3 {
            assert_eq!(tables.optimum_with_exactly(i), 51.0);
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 7);
        let mut prev = f64::INFINITY;
        for i in 0..=7 {
            let value = tables.optimum_with_exactly(i);
            // With positive loads everywhere at the leaves, exact-i optima are
            // non-increasing here (each extra blue node can be placed on a leaf).
            assert!(value <= prev + 1e-9);
            prev = value;
        }
        // All-blue over 7 unit-rate switches costs exactly one message per link = 7.
        assert_eq!(tables.optimum_with_exactly(7), 7.0);
    }

    #[test]
    fn single_switch_tree() {
        let mut tree = builders::path(1);
        tree.set_load(0, 5);
        let tables = soar_gather(&tree, 1);
        assert_eq!(tables.optimum_with_exactly(0), 5.0);
        assert_eq!(tables.optimum_with_exactly(1), 1.0);
    }

    #[test]
    fn heterogeneous_rates_scale_the_potentials() {
        let mut tree = fig5_tree();
        tree.apply_rates(&soar_topology::rates::RateScheme::paper_exponential());
        let tables = soar_gather(&tree, 2);
        // The all-red cost: leaves send over rate-1 links, internals over rate-2,
        // the root over rate-4: 17/4 + (8 + 9)/2 + (2 + 6 + 5 + 4)/1 = 29.75.
        assert!((tables.optimum_with_exactly(0) - 29.75).abs() < 1e-9);
    }

    #[test]
    fn gather_handles_high_arity_nodes() {
        let mut tree = builders::star(9);
        for v in 1..9 {
            tree.set_load(v, v as u64);
        }
        let tables = soar_gather(&tree, 3);
        // All-red: each leaf v sends v messages over 2 links (leaf → root → d).
        let all_red: f64 = (1..9).map(|v| 2.0 * v as f64).sum();
        assert_eq!(tables.optimum_with_exactly(0), all_red);
        // Best single blue node is the root: every leaf still sends v messages on its
        // own link, the root forwards 1.
        let root_blue: f64 = (1..9).map(|v| v as f64).sum::<f64>() + 1.0;
        assert_eq!(tables.optimum_with_exactly(1), root_blue);
    }
}
