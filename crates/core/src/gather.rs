//! SOAR-Gather (Algorithm 3 of the paper): the bottom-up dynamic-programming pass.
//!
//! Scanning the tree from the leaves towards the root, every switch `v` computes — for
//! every possible distance `ℓ` to its closest blue ancestor (or the destination) and
//! every possible number `i` of blue nodes placed inside its subtree — the minimum
//! utilization its subtree can contribute, conditioned on `v` being blue or red
//! (Lemma 6.2). The child subtrees are folded in one at a time through the prefix
//! recursion `Y_v^m` (Lemma 6.1 / the `mCost` procedure), whose arg-min split is
//! recorded for the coloring phase.
//!
//! ## Traversal and storage
//!
//! The pass walks the tree **level by level, deepest first** — a valid bottom-up
//! order (all children of a node sit exactly one level deeper) that doubles as the
//! parallel schedule: nodes of one level touch disjoint arena blocks and only read
//! the already-finalized deeper region, so [`soar-pool`](soar_pool) can fill a
//! level's stripes concurrently ([`run_gather_parallel`]). Children's `X` tables
//! are **borrowed as slices** from the [`GatherTables`] arena — the per-node
//! `clone()` of every child table that earlier revisions performed is gone, and a
//! warm [`SolverWorkspace`](crate::workspace::SolverWorkspace) runs the whole pass
//! without a single heap allocation.
//!
//! The complexity is `O(n · h(T) · k²)` time as in Theorem 4.1.

use crate::node_dp::{fill_node, DpKernel, DpScratch, NodeTableMut};
use crate::tables::GatherTables;
use soar_pool::ThreadPool;
use soar_topology::{NodeId, Tree};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shared read-only state for filling the nodes of one level — the single home
/// of the per-node offset arithmetic, used identically by the sequential pass
/// (whole-level regions, zero bases) and the parallel pass (carved stripes with
/// stripe bases), which is what keeps the two bit-identical by construction.
struct LevelFill<'a> {
    tree: &'a Tree,
    n_i: usize,
    /// Whether ≤1-child nodes' `Y` blocks are elided (compressed arena).
    compressed: bool,
    /// The `mCost` kernel every node of the pass runs.
    kernel: DpKernel,
    /// Cell offset of the first strictly-deeper node: where `x_children` starts
    /// in the `X` arena.
    boundary: usize,
    x_children: &'a [f64],
    rho: &'a [f64],
    n_l: &'a [u32],
    cell_off: &'a [usize],
    y_off: &'a [usize],
    rho_off: &'a [usize],
    split_off: &'a [usize],
    split_len: &'a [usize],
}

impl LevelFill<'_> {
    /// Fills node `v`'s table inside region slices whose first cell sits at
    /// arena offset `cell_base` (respectively `y_base` / `split_base` for the
    /// `Y` and split regions). Children's `X` tables are borrowed from
    /// `x_children`. Returns the scratch growth count.
    #[allow(clippy::too_many_arguments)]
    fn fill_one(
        &self,
        v: NodeId,
        x: &mut [f64],
        y_blue: &mut [f64],
        y_red: &mut [f64],
        splits: &mut [u32],
        cell_base: usize,
        y_base: usize,
        split_base: usize,
        scratch: &mut DpScratch,
    ) -> usize {
        let rows = self.n_l[v] as usize;
        let cells = rows * self.n_i;
        let off = self.cell_off[v] - cell_base;
        let sp_off = self.split_off[v] - split_base;
        let children = self.tree.children(v);
        // Elided nodes get empty `Y` destinations; fill_node skips the writes
        // and `GatherTables::y_value` recomputes the values on demand.
        let y_cells = if self.compressed && children.len() <= 1 {
            0
        } else {
            cells
        };
        let yo = self.y_off[v] - y_base;
        fill_node(
            NodeTableMut {
                x: &mut x[off..off + cells],
                y_blue: &mut y_blue[yo..yo + y_cells],
                y_red: &mut y_red[yo..yo + y_cells],
                splits: &mut splits[sp_off..sp_off + self.split_len[v]],
            },
            &self.rho[self.rho_off[v]..self.rho_off[v] + rows],
            self.tree.load(v),
            self.tree.available(v),
            self.n_i,
            children.len(),
            children.iter().map(|&c| {
                let c_cells = self.n_l[c] as usize * self.n_i;
                let c_off = self.cell_off[c] - self.boundary;
                &self.x_children[c_off..c_off + c_cells]
            }),
            scratch,
            self.kernel,
        )
    }
}

/// Runs SOAR-Gather for budget `k` over the tree (its loads, rates and availability
/// set Λ) and returns the full set of DP tables.
///
/// Allocates a fresh arena per call; batch and sweep callers should prefer a
/// [`SolverWorkspace`](crate::workspace::SolverWorkspace), which reuses one arena
/// across gathers.
pub fn soar_gather(tree: &Tree, k: usize) -> GatherTables {
    let mut tables = GatherTables::new(tree, k);
    let mut scratch = DpScratch::new();
    run_gather(&mut tables, tree, &mut scratch, DpKernel::Auto);
    tables
}

/// Fills already-laid-out tables bottom-up, sequentially. Returns the number of
/// scratch-buffer growths (0 when `scratch` is warm).
pub(crate) fn run_gather(
    tables: &mut GatherTables,
    tree: &Tree,
    scratch: &mut DpScratch,
    kernel: DpKernel,
) -> usize {
    let mut grew = 0;
    let n_i = tables.n_i;
    for d in (0..tables.level_ranges.len()).rev() {
        let _level = soar_obs::span!("gather_level", d);
        let (start, end) = tables.level_ranges[d];
        let boundary = tables.level_cell_end[d];
        let compressed = tables.compressed;
        let GatherTables {
            x,
            y_blue,
            y_red,
            splits,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
            level_nodes,
            ..
        } = &mut *tables;
        // Everything at offsets >= boundary belongs to strictly deeper levels:
        // finalized children, read-only from here on.
        let (x_level, x_children) = x.split_at_mut(boundary);
        let ctx = LevelFill {
            tree,
            n_i,
            compressed,
            kernel,
            boundary,
            x_children,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
        };
        for &v in &level_nodes[start..end] {
            grew += ctx.fill_one(v, x_level, y_blue, y_red, splits, 0, 0, 0, scratch);
        }
    }
    grew
}

/// Refills only the given nodes of already-gathered tables, bottom-up — the
/// incremental update behind `soar-online`'s epoch solves.
///
/// `dirty` must be **ancestor-closed** (if a node's inputs changed, every
/// ancestor up to the root is also in the set — a parent reads its children's
/// `X` tables, so a stale ancestor would fold refreshed child values into an
/// old table) and **sorted deepest-first**, so a node's dirty children are
/// refilled before the node itself. Nodes *not* in the set keep their values
/// from the previous pass; since their loads, availability, ρ blocks and child
/// tables are unchanged, those values are exactly what a from-scratch gather
/// would recompute — the partial pass is bit-identical to a full one by
/// construction. The layout (tree shape, budget) must match the pass that
/// filled the tables; callers go through
/// [`SolverWorkspace::gather_update`](crate::workspace::SolverWorkspace::gather_update),
/// which checks that.
///
/// Link *rates* may have changed since the filling pass: every dirty node's ρ
/// prefix block is recomputed here before the refill (the partial rho-arena
/// reset), which is bit-identical to the stored block when the rates are
/// unchanged — the same additions in the same order. The rate-change contract
/// is the caller's: a changed up-link of `w` moves the ρ blocks of exactly
/// `subtree(w)`, so that whole subtree (plus the usual ancestor closure) must
/// be in `dirty`.
///
/// Returns the number of scratch-buffer growths (0 when `scratch` is warm).
pub(crate) fn run_gather_partial(
    tables: &mut GatherTables,
    tree: &Tree,
    dirty: &[NodeId],
    scratch: &mut DpScratch,
    kernel: DpKernel,
) -> usize {
    let mut grew = 0;
    for &v in dirty {
        tables.refresh_rho_node(tree, v);
    }
    let n_i = tables.n_i;
    let mut idx = 0;
    while idx < dirty.len() {
        let d = tree.depth(dirty[idx]);
        let mut end = idx + 1;
        while end < dirty.len() && tree.depth(dirty[end]) == d {
            end += 1;
        }
        debug_assert!(
            end == dirty.len() || tree.depth(dirty[end]) < d,
            "dirty nodes must be sorted deepest-first"
        );
        let _level = soar_obs::span!("gather_level", d);
        let boundary = tables.level_cell_end[d];
        let compressed = tables.compressed;
        let GatherTables {
            x,
            y_blue,
            y_red,
            splits,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
            ..
        } = &mut *tables;
        let (x_level, x_children) = x.split_at_mut(boundary);
        let ctx = LevelFill {
            tree,
            n_i,
            compressed,
            kernel,
            boundary,
            x_children,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
        };
        for &v in &dirty[idx..end] {
            grew += ctx.fill_one(v, x_level, y_blue, y_red, splits, 0, 0, 0, scratch);
        }
        idx = end;
    }
    grew
}

/// Fills already-laid-out tables bottom-up with each level's nodes processed
/// concurrently on `pool`.
///
/// Every level is carved into at most `pool.threads()` contiguous arena stripes
/// (nodes are laid out level-major, so a run of nodes is a run of cells); each
/// stripe is an independent job with its own [`DpScratch`] from `scratches`.
/// Children are always finalized before their parents *by construction* — they
/// live one level deeper, and levels are separated by the scope barrier. The
/// per-node computation is identical to [`run_gather`], so the results are
/// bit-identical to the sequential pass regardless of thread count.
///
/// Returns the number of scratch-buffer growths (0 when warm).
pub(crate) fn run_gather_parallel(
    tables: &mut GatherTables,
    tree: &Tree,
    scratches: &mut Vec<DpScratch>,
    pool: &ThreadPool,
    kernel: DpKernel,
) -> usize {
    let max_stripes = pool.threads();
    while scratches.len() < max_stripes {
        // DpScratch::new is heap-free; its buffers grow inside fill_node, where
        // the growth is counted.
        scratches.push(DpScratch::new());
    }
    let grew = AtomicUsize::new(0);
    let n_i = tables.n_i;
    for d in (0..tables.level_ranges.len()).rev() {
        let (start, end) = tables.level_ranges[d];
        let n_nodes = end - start;
        if n_nodes == 0 {
            continue;
        }
        // One span per level on the *calling* thread (the span covers the whole
        // fork/join); each stripe additionally records on its worker's ring.
        let _level = soar_obs::span!("gather_level", d);
        let boundary = tables.level_cell_end[d];
        let level_cell_start = if d == 0 {
            0
        } else {
            tables.level_cell_end[d - 1]
        };
        let level_split_start = if d == 0 {
            0
        } else {
            tables.level_split_end[d - 1]
        };
        let level_split_end = tables.level_split_end[d];
        let level_y_start = if d == 0 { 0 } else { tables.level_y_end[d - 1] };
        let level_y_end = tables.level_y_end[d];
        let compressed = tables.compressed;
        let per_stripe = n_nodes.div_ceil(max_stripes);
        let GatherTables {
            x,
            y_blue,
            y_red,
            splits,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
            level_nodes,
            ..
        } = &mut *tables;
        let (x_level_all, x_children) = x.split_at_mut(boundary);
        // Mutable leases on this level's region of each arena; stripes are carved
        // off the front as the spawn loop walks the level. The `Y` region has its
        // own (compression-aware) extent, bounded by `level_y_end`.
        let mut x_rest = &mut x_level_all[level_cell_start..];
        let mut yb_rest = &mut y_blue[level_y_start..level_y_end];
        let mut yr_rest = &mut y_red[level_y_start..level_y_end];
        let mut sp_rest = &mut splits[level_split_start..level_split_end];
        // Shared, read-only state for all stripes.
        let ctx = &LevelFill {
            tree,
            n_i,
            compressed,
            kernel,
            boundary,
            x_children,
            rho,
            n_l,
            cell_off,
            y_off,
            rho_off,
            split_off,
            split_len,
        };
        let grew = &grew;
        pool.scope(|s| {
            for (stripe_nodes, scratch) in level_nodes[start..end]
                .chunks(per_stripe)
                .zip(scratches.iter_mut())
            {
                let first = stripe_nodes[0];
                let last = stripe_nodes[stripe_nodes.len() - 1];
                let cell_base = ctx.cell_off[first];
                let cell_len = ctx.cell_off[last] + ctx.n_l[last] as usize * n_i - cell_base;
                let split_base = ctx.split_off[first];
                let split_total = ctx.split_off[last] + ctx.split_len[last] - split_base;
                let y_base = ctx.y_off[first];
                let last_y_cells = if compressed && ctx.split_len[last] == 0 {
                    0
                } else {
                    ctx.n_l[last] as usize * n_i
                };
                let y_len = ctx.y_off[last] + last_y_cells - y_base;
                let (x_s, tail) = std::mem::take(&mut x_rest).split_at_mut(cell_len);
                x_rest = tail;
                let (yb_s, tail) = std::mem::take(&mut yb_rest).split_at_mut(y_len);
                yb_rest = tail;
                let (yr_s, tail) = std::mem::take(&mut yr_rest).split_at_mut(y_len);
                yr_rest = tail;
                let (sp_s, tail) = std::mem::take(&mut sp_rest).split_at_mut(split_total);
                sp_rest = tail;
                s.spawn(move || {
                    let _stripe = soar_obs::span!("gather_stripe", stripe_nodes.len());
                    let mut local_grew = 0;
                    for &v in stripe_nodes {
                        local_grew += ctx.fill_one(
                            v, x_s, yb_s, yr_s, sp_s, cell_base, y_base, split_base, scratch,
                        );
                    }
                    if local_grew > 0 {
                        grew.fetch_add(local_grew, Ordering::Relaxed);
                    }
                });
            }
        });
    }
    grew.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{Color, INF};
    use soar_topology::{builders, Tree};

    /// The Fig. 2 / Fig. 5 instance: complete binary tree over 7 switches, leaf loads
    /// 2, 6, 5, 4, unit rates, Λ = S.
    fn fig5_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn leaf_tables_match_fig5() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 2);
        // Leaf with load 2 (node 3): rows ℓ = 0..3, columns i = 0..2.
        // Red row is ℓ·L, blue row is ℓ (for i ≥ 1); X is their minimum.
        for l in 0..4 {
            assert_eq!(tables.y(3, l, 0, Color::Red), 2.0 * l as f64);
            assert_eq!(tables.y(3, l, 0, Color::Blue), INF);
            assert_eq!(tables.x(3, l, 0), 2.0 * l as f64);
            for i in 1..=2 {
                assert_eq!(tables.y(3, l, i, Color::Blue), l as f64);
                assert_eq!(tables.x(3, l, i), (l as f64).min(2.0 * l as f64));
            }
        }
        // Leaf with load 6 (node 4): red row is 6ℓ.
        assert_eq!(tables.x(4, 1, 0), 6.0);
        assert_eq!(tables.x(4, 2, 0), 12.0);
        assert_eq!(tables.x(4, 3, 0), 18.0);
        assert_eq!(tables.x(4, 3, 1), 3.0);
        // Leaf with load 5 (node 5) and 4 (node 6).
        assert_eq!(tables.x(5, 2, 0), 10.0);
        assert_eq!(tables.x(6, 2, 0), 8.0);
    }

    #[test]
    fn internal_node_tables_match_fig5() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 2);
        // Left internal switch (node 1, above loads 2 and 6).
        // Fig. 5: X(ℓ=0, ·) = (8, 3, 2); X(ℓ=1, ·) = (16, 6, 4); X(ℓ=2, ·) = (24, 9, 5).
        assert_eq!(tables.x(1, 0, 0), 8.0);
        assert_eq!(tables.x(1, 0, 1), 3.0);
        assert_eq!(tables.x(1, 0, 2), 2.0);
        assert_eq!(tables.x(1, 1, 0), 16.0);
        assert_eq!(tables.x(1, 1, 1), 6.0);
        assert_eq!(tables.x(1, 1, 2), 4.0);
        assert_eq!(tables.x(1, 2, 0), 24.0);
        assert_eq!(tables.x(1, 2, 1), 9.0);
        assert_eq!(tables.x(1, 2, 2), 5.0);
        // Conditioned values reported in Fig. 5(a): Y(ℓ=1, i=1, B) = 9, Y(ℓ=2, i=1, B) = 10.
        assert_eq!(tables.y(1, 1, 1, Color::Blue), 9.0);
        assert_eq!(tables.y(1, 2, 1, Color::Blue), 10.0);
        assert_eq!(tables.y(1, 0, 0, Color::Red), 8.0);

        // Right internal switch (node 2, above loads 5 and 4).
        // Fig. 5: X(ℓ=0, ·) = (9, 5, 2); X(ℓ=1, ·) = (18, 10, 4).
        assert_eq!(tables.x(2, 0, 0), 9.0);
        assert_eq!(tables.x(2, 0, 1), 5.0);
        assert_eq!(tables.x(2, 0, 2), 2.0);
        assert_eq!(tables.x(2, 1, 0), 18.0);
        assert_eq!(tables.x(2, 1, 1), 10.0);
        assert_eq!(tables.x(2, 1, 2), 4.0);
        assert_eq!(tables.y(2, 1, 1, Color::Blue), 10.0);
        assert_eq!(tables.y(2, 2, 1, Color::Blue), 11.0);
    }

    #[test]
    fn root_table_yields_the_known_optima() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 4);
        // X_r(1, i) is the optimal utilization with exactly i blue nodes (Eq. 6):
        // all-red is 51; Fig. 3 reports 35, 20, 15, 11 for k = 1..4.
        assert_eq!(tables.optimum_with_exactly(0), 51.0);
        assert_eq!(tables.optimum_with_exactly(1), 35.0);
        assert_eq!(tables.optimum_with_exactly(2), 20.0);
        assert_eq!(tables.optimum_with_exactly(3), 15.0);
        assert_eq!(tables.optimum_with_exactly(4), 11.0);
        let (best_i, best) = tables.optimum();
        assert_eq!(best_i, 4);
        assert_eq!(best, 11.0);
        // The root's subtree-internal view (ℓ = 0) for i = 0 is the all-red cost minus
        // the 17 messages on the (r, d) link: 34, as printed in Fig. 5.
        assert_eq!(tables.x(0, 0, 0), 34.0);
        assert_eq!(tables.x(0, 0, 1), 24.0);
        assert_eq!(tables.x(0, 0, 2), 16.0);
    }

    #[test]
    fn unavailable_switches_are_never_counted_blue() {
        let mut tree = fig5_tree();
        // Make everything unavailable: the optimum for any k collapses to all-red.
        for v in 0..tree.n_switches() {
            tree.set_available(v, false);
        }
        let tables = soar_gather(&tree, 3);
        for i in 0..=3 {
            assert_eq!(tables.optimum_with_exactly(i), 51.0);
        }
    }

    #[test]
    fn larger_budget_never_hurts() {
        let tree = fig5_tree();
        let tables = soar_gather(&tree, 7);
        let mut prev = f64::INFINITY;
        for i in 0..=7 {
            let value = tables.optimum_with_exactly(i);
            // With positive loads everywhere at the leaves, exact-i optima are
            // non-increasing here (each extra blue node can be placed on a leaf).
            assert!(value <= prev + 1e-9);
            prev = value;
        }
        // All-blue over 7 unit-rate switches costs exactly one message per link = 7.
        assert_eq!(tables.optimum_with_exactly(7), 7.0);
    }

    #[test]
    fn single_switch_tree() {
        let mut tree = builders::path(1);
        tree.set_load(0, 5);
        let tables = soar_gather(&tree, 1);
        assert_eq!(tables.optimum_with_exactly(0), 5.0);
        assert_eq!(tables.optimum_with_exactly(1), 1.0);
    }

    #[test]
    fn heterogeneous_rates_scale_the_potentials() {
        let mut tree = fig5_tree();
        tree.apply_rates(&soar_topology::rates::RateScheme::paper_exponential());
        let tables = soar_gather(&tree, 2);
        // The all-red cost: leaves send over rate-1 links, internals over rate-2,
        // the root over rate-4: 17/4 + (8 + 9)/2 + (2 + 6 + 5 + 4)/1 = 29.75.
        assert!((tables.optimum_with_exactly(0) - 29.75).abs() < 1e-9);
    }

    #[test]
    fn gather_handles_high_arity_nodes() {
        let mut tree = builders::star(9);
        for v in 1..9 {
            tree.set_load(v, v as u64);
        }
        let tables = soar_gather(&tree, 3);
        // All-red: each leaf v sends v messages over 2 links (leaf → root → d).
        let all_red: f64 = (1..9).map(|v| 2.0 * v as f64).sum();
        assert_eq!(tables.optimum_with_exactly(0), all_red);
        // Best single blue node is the root: every leaf still sends v messages on its
        // own link, the root forwards 1.
        let root_blue: f64 = (1..9).map(|v| v as f64).sum::<f64>() + 1.0;
        assert_eq!(tables.optimum_with_exactly(1), root_blue);
    }

    #[test]
    fn partial_regather_of_a_dirty_path_matches_a_fresh_gather() {
        let mut tree = fig5_tree();
        let mut tables = soar_gather(&tree, 3);
        let mut scratch = DpScratch::new();
        // Change one leaf's load: only its root path (leaf 4 -> 1 -> 0) is dirty.
        tree.set_load(4, 9);
        let grew = run_gather_partial(&mut tables, &tree, &[4, 1, 0], &mut scratch, DpKernel::Auto);
        let _ = grew; // scratch growth is covered by the workspace tests
        assert_eq!(tables, soar_gather(&tree, 3));

        // Availability changes update through the same path.
        tree.set_available(5, false);
        run_gather_partial(&mut tables, &tree, &[5, 2, 0], &mut scratch, DpKernel::Auto);
        assert_eq!(tables, soar_gather(&tree, 3));

        // An empty dirty set leaves the tables untouched.
        let before = tables.clone();
        run_gather_partial(&mut tables, &tree, &[], &mut scratch, DpKernel::Auto);
        assert_eq!(tables, before);

        // A link-rate change: the ρ blocks of the link's whole subtree move,
        // so that subtree (plus the ancestor closure) is the dirty set and the
        // partial rho-arena reset brings the pass back to bit-identity.
        tree.set_rate(1, 0.5);
        let mut dirty: Vec<_> = tree.subtree(1);
        dirty.push(0);
        dirty.sort_by_key(|&v| (std::cmp::Reverse(tree.depth(v)), v));
        run_gather_partial(&mut tables, &tree, &dirty, &mut scratch, DpKernel::Auto);
        assert_eq!(tables, soar_gather(&tree, 3));
    }

    #[test]
    fn parallel_gather_is_bit_identical_to_sequential() {
        // Several shapes, including high arity and a path, on a multi-worker pool.
        let pool = ThreadPool::new(4);
        let trees = vec![fig5_tree(), builders::star(17), builders::path(9), {
            let mut t = builders::complete_binary_tree(63);
            for (i, v) in t.leaves().collect::<Vec<_>>().into_iter().enumerate() {
                t.set_load(v, (i % 7 + 1) as u64);
            }
            t
        }];
        for tree in &trees {
            for k in [0usize, 1, 3, 6] {
                let sequential = soar_gather(tree, k);
                let mut tables = GatherTables::new(tree, k);
                let mut scratches = Vec::new();
                run_gather_parallel(&mut tables, tree, &mut scratches, &pool, DpKernel::Auto);
                assert_eq!(
                    tables,
                    sequential,
                    "parallel gather diverged on n = {}, k = {k}",
                    tree.n_switches()
                );
            }
        }
    }
}
