//! The contending placement strategies of Sec. 3 / Sec. 5.1, plus a couple of natural
//! extras used for ablations.
//!
//! * [`top`] — the `k` available switches closest to the root (ties broken by id);
//! * [`max_load`] — the `k` available switches with the largest load;
//! * [`max_degree`] — the `k` available switches with the largest degree (the variant
//!   of `Max` used for the scale-free networks of Appendix B);
//! * [`level`] — the deepest whole level of the tree that fits within the budget
//!   (defined by the paper for complete binary trees; here it works for any tree by
//!   grouping switches by depth);
//! * [`random_placement`] — `k` available switches chosen uniformly at random;
//! * [`greedy`] — repeatedly adds the single blue switch with the largest marginal
//!   reduction in φ (an ablation showing how much the exact DP buys over hill climbing);
//! * [`all_red`] / [`all_blue`] — the two extremes used for normalization.
//!
//! Every strategy respects the availability set Λ stored in the tree and never uses
//! more than `k` blue switches. The [`Strategy`] enum packages them behind one API for
//! the evaluation harness and the multi-workload scenarios.

use crate::solver::{self, Solution};
use rand::seq::SliceRandom;
use rand::Rng;
use soar_reduce::{cost, Coloring};
use soar_topology::{builders, NodeId, Tree};

/// The all-red coloring (no aggregation anywhere): the normalization baseline.
pub fn all_red(tree: &Tree) -> Coloring {
    Coloring::all_red(tree.n_switches())
}

/// The all-blue coloring over the available switches (`U = Λ`): the unbounded
/// in-network computing reference.
pub fn all_blue(tree: &Tree) -> Coloring {
    Coloring::all_available_blue(tree)
}

/// `Top`: the `k` available switches closest to the root (Sec. 3 (i)).
pub fn top(tree: &Tree, k: usize) -> Coloring {
    let mut candidates: Vec<NodeId> = tree.node_ids().filter(|&v| tree.available(v)).collect();
    candidates.sort_by_key(|&v| (tree.depth(v), v));
    Coloring::from_blue_nodes(tree.n_switches(), candidates.into_iter().take(k))
        .expect("candidate ids come from the tree")
}

/// `Max`: the `k` available switches with the largest load (Sec. 3 (ii)).
pub fn max_load(tree: &Tree, k: usize) -> Coloring {
    let mut candidates: Vec<NodeId> = tree.node_ids().filter(|&v| tree.available(v)).collect();
    candidates.sort_by_key(|&v| (std::cmp::Reverse(tree.load(v)), v));
    Coloring::from_blue_nodes(tree.n_switches(), candidates.into_iter().take(k))
        .expect("candidate ids come from the tree")
}

/// `Max` by degree: the `k` available switches with the largest degree, the natural
/// reading of the `Max` policy on scale-free trees with unit loads (Appendix B).
pub fn max_degree(tree: &Tree, k: usize) -> Coloring {
    let degrees = builders::degrees(tree);
    let mut candidates: Vec<NodeId> = tree.node_ids().filter(|&v| tree.available(v)).collect();
    candidates.sort_by_key(|&v| (std::cmp::Reverse(degrees[v]), v));
    Coloring::from_blue_nodes(tree.n_switches(), candidates.into_iter().take(k))
        .expect("candidate ids come from the tree")
}

/// `Level`: colors the deepest whole depth-level whose size fits within the budget
/// (Sec. 3 (iii)). Only the available switches of that level are colored; if even the
/// root level does not fit (k = 0) nothing is colored.
pub fn level(tree: &Tree, k: usize) -> Coloring {
    let levels = tree.levels();
    let chosen = levels
        .iter()
        .rev()
        .find(|level| !level.is_empty() && level.len() <= k);
    match chosen {
        Some(level) => Coloring::from_blue_nodes(
            tree.n_switches(),
            level.iter().copied().filter(|&v| tree.available(v)),
        )
        .expect("level ids come from the tree"),
        None => Coloring::all_red(tree.n_switches()),
    }
}

/// Uniformly random placement of `k` blue switches among the available ones.
pub fn random_placement<R: Rng + ?Sized>(tree: &Tree, k: usize, rng: &mut R) -> Coloring {
    let mut candidates: Vec<NodeId> = tree.node_ids().filter(|&v| tree.available(v)).collect();
    candidates.shuffle(rng);
    Coloring::from_blue_nodes(tree.n_switches(), candidates.into_iter().take(k))
        .expect("candidate ids come from the tree")
}

/// Greedy hill climbing: repeatedly add the available switch whose coloring most
/// reduces φ, stopping after `k` additions or when no addition helps.
///
/// This is *not* one of the paper's strategies; it serves as an ablation quantifying
/// the value of SOAR's exact dynamic program over the obvious marginal-gain heuristic
/// (which the paper argues is foiled by the long-range dependencies between blue nodes
/// on a root path).
pub fn greedy(tree: &Tree, k: usize) -> Coloring {
    let mut coloring = Coloring::all_red(tree.n_switches());
    let mut current = cost::phi(tree, &coloring);
    for _ in 0..k {
        let mut best: Option<(NodeId, f64)> = None;
        for v in tree.node_ids() {
            if !tree.available(v) || coloring.is_blue(v) {
                continue;
            }
            coloring.set_blue(v);
            let candidate = cost::phi(tree, &coloring);
            coloring.set_red(v);
            if candidate < current - 1e-12 && best.map(|(_, c)| candidate < c).unwrap_or(true) {
                best = Some((v, candidate));
            }
        }
        match best {
            Some((v, value)) => {
                coloring.set_blue(v);
                current = value;
            }
            None => break,
        }
    }
    coloring
}

/// A placement policy for the φ-BIC problem, packaged for sweeps and online scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The optimal algorithm of the paper.
    Soar,
    /// `k` switches closest to the root.
    Top,
    /// `k` switches with the largest load.
    MaxLoad,
    /// `k` switches with the largest degree.
    MaxDegree,
    /// The deepest whole level fitting the budget.
    Level,
    /// Uniformly random placement.
    Random,
    /// Greedy marginal-gain hill climbing (ablation).
    Greedy,
    /// No aggregation at all.
    AllRed,
    /// Every available switch aggregates (ignores the budget).
    AllBlue,
}

impl Strategy {
    /// All strategies compared in the paper's figures, in their plotting order.
    pub const PAPER_SET: [Strategy; 6] = [
        Strategy::AllBlue,
        Strategy::AllRed,
        Strategy::MaxLoad,
        Strategy::Soar,
        Strategy::Top,
        Strategy::Level,
    ];

    /// A short display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Soar => "SOAR",
            Strategy::Top => "Top",
            Strategy::MaxLoad => "Max",
            Strategy::MaxDegree => "Max-degree",
            Strategy::Level => "Level",
            Strategy::Random => "Random",
            Strategy::Greedy => "Greedy",
            Strategy::AllRed => "All red",
            Strategy::AllBlue => "All blue",
        }
    }

    /// Computes the placement this strategy chooses for budget `k` on the given tree.
    pub fn place<R: Rng + ?Sized>(&self, tree: &Tree, k: usize, rng: &mut R) -> Coloring {
        match self {
            Strategy::Soar => solver::solve(tree, k).coloring,
            Strategy::Top => top(tree, k),
            Strategy::MaxLoad => max_load(tree, k),
            Strategy::MaxDegree => max_degree(tree, k),
            Strategy::Level => level(tree, k),
            Strategy::Random => random_placement(tree, k, rng),
            Strategy::Greedy => greedy(tree, k),
            Strategy::AllRed => all_red(tree),
            Strategy::AllBlue => all_blue(tree),
        }
    }

    /// Convenience: place and evaluate in one call.
    pub fn solve<R: Rng + ?Sized>(&self, tree: &Tree, k: usize, rng: &mut R) -> Solution {
        let coloring = self.place(tree, k, rng);
        Solution::from_coloring(tree, coloring, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn motivating_example_ordering_of_strategies() {
        // Fig. 2: SOAR (20) beats Level (21) beats Max (24) beats Top (27/28 depending
        // on tie-breaks among the switches nearest the root).
        let tree = fig2_tree();
        let mut rng = StdRng::seed_from_u64(0);
        let soar = Strategy::Soar.solve(&tree, 2, &mut rng).cost;
        let level_cost = Strategy::Level.solve(&tree, 2, &mut rng).cost;
        let max_cost = Strategy::MaxLoad.solve(&tree, 2, &mut rng).cost;
        let top_cost = Strategy::Top.solve(&tree, 2, &mut rng).cost;
        assert_eq!(soar, 20.0);
        assert_eq!(level_cost, 21.0);
        assert_eq!(max_cost, 24.0);
        assert!(top_cost == 27.0 || top_cost == 28.0);
        assert!(soar < level_cost && level_cost < max_cost && max_cost < top_cost);
    }

    #[test]
    fn top_picks_switches_nearest_the_root() {
        let tree = fig2_tree();
        assert_eq!(top(&tree, 1).blue_nodes(), vec![0]);
        assert_eq!(top(&tree, 3).blue_nodes(), vec![0, 1, 2]);
        assert_eq!(top(&tree, 100).n_blue(), 7);
    }

    #[test]
    fn max_load_picks_heaviest_leaves() {
        let tree = fig2_tree();
        assert_eq!(max_load(&tree, 2).blue_nodes(), vec![4, 5]);
        assert_eq!(max_load(&tree, 4).blue_nodes(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn max_degree_prefers_hubs() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = builders::scale_free_tree(64, &mut rng);
        let c = max_degree(&tree, 3);
        let degrees = builders::degrees(&tree);
        let min_chosen = c.iter_blue().map(|v| degrees[v]).min().unwrap();
        let max_unchosen = tree
            .node_ids()
            .filter(|&v| !c.is_blue(v))
            .map(|v| degrees[v])
            .max()
            .unwrap();
        assert!(
            min_chosen >= max_unchosen,
            "every chosen hub must have degree at least as large as any unchosen switch"
        );
        assert_eq!(c.n_blue(), 3);
    }

    #[test]
    fn level_selects_the_deepest_fitting_level() {
        let tree = fig2_tree();
        // k = 1: only the root level fits. k = 2, 3: the two internal switches.
        // k = 4+: the leaf level.
        assert_eq!(level(&tree, 1).blue_nodes(), vec![0]);
        assert_eq!(level(&tree, 2).blue_nodes(), vec![1, 2]);
        assert_eq!(level(&tree, 3).blue_nodes(), vec![1, 2]);
        assert_eq!(level(&tree, 4).blue_nodes(), vec![3, 4, 5, 6]);
        assert_eq!(level(&tree, 0).n_blue(), 0);
    }

    #[test]
    fn level_skips_unavailable_switches_in_the_chosen_level() {
        let mut tree = fig2_tree();
        tree.set_available(1, false);
        let c = level(&tree, 2);
        assert_eq!(c.blue_nodes(), vec![2]);
    }

    #[test]
    fn random_respects_budget_and_availability() {
        let mut tree = fig2_tree();
        tree.set_available(0, false);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let c = random_placement(&tree, 3, &mut rng);
            assert_eq!(c.n_blue(), 3);
            assert!(!c.is_blue(0));
        }
    }

    #[test]
    fn greedy_is_no_better_than_soar_and_no_worse_than_all_red() {
        let mut tree = builders::complete_binary_tree_bt(64);
        let mut rng = StdRng::seed_from_u64(5);
        tree.apply_leaf_loads(&soar_topology::load::LoadSpec::paper_power_law(), &mut rng);
        for k in [1usize, 2, 4, 8] {
            let soar_cost = Strategy::Soar.solve(&tree, k, &mut rng).cost;
            let greedy_cost = Strategy::Greedy.solve(&tree, k, &mut rng).cost;
            let red_cost = Strategy::AllRed.solve(&tree, k, &mut rng).cost;
            assert!(soar_cost <= greedy_cost + 1e-9);
            assert!(greedy_cost <= red_cost + 1e-9);
        }
    }

    #[test]
    fn greedy_stops_early_when_no_gain_is_possible() {
        let tree = builders::complete_binary_tree(7); // zero load: nothing helps
        let c = greedy(&tree, 5);
        assert_eq!(c.n_blue(), 0);
    }

    #[test]
    fn all_strategies_respect_budget_and_availability() {
        let mut tree = fig2_tree();
        tree.set_available(4, false);
        let mut rng = StdRng::seed_from_u64(1);
        for strategy in [
            Strategy::Soar,
            Strategy::Top,
            Strategy::MaxLoad,
            Strategy::MaxDegree,
            Strategy::Level,
            Strategy::Random,
            Strategy::Greedy,
        ] {
            let c = strategy.place(&tree, 2, &mut rng);
            assert!(
                c.n_blue() <= 2,
                "{} used too many blue nodes",
                strategy.name()
            );
            assert!(
                c.validate(&tree, 2).is_ok(),
                "{} violated availability",
                strategy.name()
            );
        }
        // AllBlue deliberately ignores the budget but still respects Λ.
        let blue = Strategy::AllBlue.place(&tree, 2, &mut rng);
        assert!(!blue.is_blue(4));
        assert_eq!(blue.n_blue(), 6);
    }

    #[test]
    fn soar_never_loses_to_any_strategy() {
        let mut tree = builders::complete_binary_tree_bt(32);
        let mut rng = StdRng::seed_from_u64(11);
        tree.apply_leaf_loads(&soar_topology::load::LoadSpec::paper_power_law(), &mut rng);
        for k in [1usize, 2, 4, 8] {
            let soar_cost = Strategy::Soar.solve(&tree, k, &mut rng).cost;
            for strategy in [
                Strategy::Top,
                Strategy::MaxLoad,
                Strategy::Level,
                Strategy::Random,
                Strategy::Greedy,
            ] {
                let other = strategy.solve(&tree, k, &mut rng).cost;
                assert!(
                    soar_cost <= other + 1e-9,
                    "SOAR ({soar_cost}) must not lose to {} ({other}) at k = {k}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::Soar.name(), "SOAR");
        assert_eq!(Strategy::MaxLoad.name(), "Max");
        assert_eq!(Strategy::AllBlue.name(), "All blue");
        assert_eq!(Strategy::PAPER_SET.len(), 6);
    }
}
