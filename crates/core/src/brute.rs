//! Exhaustive reference solver for the φ-BIC problem.
//!
//! Enumerates every subset `U ⊆ Λ` with `|U| ≤ k` and evaluates `φ(T, L, U)` directly
//! via [`soar_reduce::cost::phi`]. Runtime is `Θ(Σ_{i ≤ k} C(|Λ|, i) · n)`, so this is
//! strictly a testing oracle for small instances; SOAR's optimality proofs (Lemma 6.2 /
//! 6.3) are exercised in the test suites by comparing against it on thousands of random
//! trees.

use crate::solver::Solution;
use soar_reduce::{cost, Coloring};
use soar_topology::{NodeId, Tree};

/// Upper bound on the number of subsets [`brute_force`] is willing to enumerate before
/// it panics — a guard against accidentally running the oracle on a real instance.
pub const MAX_SUBSETS: u128 = 20_000_000;

/// Number of subsets of size at most `k` from a ground set of `n` elements.
fn subset_count(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut binom: u128 = 1;
    for i in 0..=k.min(n) {
        if i > 0 {
            binom = binom * (n as u128 - i as u128 + 1) / i as u128;
        }
        total = total.saturating_add(binom);
        if total > MAX_SUBSETS {
            return total;
        }
    }
    total
}

/// Finds an optimal set of at most `k` blue switches by exhaustive enumeration.
///
/// # Panics
///
/// Panics if the number of candidate subsets exceeds [`MAX_SUBSETS`].
pub fn brute_force(tree: &Tree, k: usize) -> Solution {
    let candidates: Vec<NodeId> = tree.node_ids().filter(|&v| tree.available(v)).collect();
    let count = subset_count(candidates.len(), k);
    assert!(
        count <= MAX_SUBSETS,
        "brute force would enumerate {count} subsets; this oracle is for small tests only"
    );

    let mut best_coloring = Coloring::all_red(tree.n_switches());
    let mut best_cost = cost::phi(tree, &best_coloring);

    // Depth-first enumeration of subsets of `candidates` with size ≤ k.
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    enumerate(
        tree,
        &candidates,
        0,
        k,
        &mut chosen,
        &mut best_cost,
        &mut best_coloring,
    );

    Solution {
        blue_used: best_coloring.n_blue(),
        cost: best_cost,
        coloring: best_coloring,
        budget: k,
    }
}

fn enumerate(
    tree: &Tree,
    candidates: &[NodeId],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<NodeId>,
    best_cost: &mut f64,
    best_coloring: &mut Coloring,
) {
    if remaining == 0 || start == candidates.len() {
        return;
    }
    for idx in start..candidates.len() {
        chosen.push(candidates[idx]);
        let coloring = Coloring::from_blue_nodes(tree.n_switches(), chosen.iter().copied())
            .expect("candidates are valid switch ids");
        let value = cost::phi(tree, &coloring);
        if value < *best_cost - 1e-12 {
            *best_cost = value;
            *best_coloring = coloring;
        }
        enumerate(
            tree,
            candidates,
            idx + 1,
            remaining - 1,
            chosen,
            best_cost,
            best_coloring,
        );
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn brute_force_reproduces_fig3() {
        let tree = fig2_tree();
        let expected = [51.0, 35.0, 20.0, 15.0, 11.0];
        for (k, &want) in expected.iter().enumerate() {
            let solution = brute_force(&tree, k);
            assert_eq!(solution.cost, want, "k = {k}");
            assert_eq!(solution.cost, cost::phi(&tree, &solution.coloring));
        }
    }

    #[test]
    fn soar_matches_brute_force_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..40 {
            let n = rng.random_range(2..=12);
            let mut tree = builders::random_tree(n, &mut rng);
            for v in 0..n {
                tree.set_load(v, rng.random_range(0..7));
                // Randomize rates and availability too.
                tree.set_rate(v, [0.5, 1.0, 2.0, 4.0][rng.random_range(0..4usize)]);
                tree.set_available(v, rng.random_range(0..4) != 0);
            }
            let k = rng.random_range(0..=4);
            let exact = brute_force(&tree, k);
            let soar = solve(&tree, k);
            assert!(
                (exact.cost - soar.cost).abs() < 1e-9,
                "trial {trial}: brute {} vs SOAR {} (n = {n}, k = {k})",
                exact.cost,
                soar.cost
            );
        }
    }

    #[test]
    fn budget_zero_is_all_red() {
        let tree = fig2_tree();
        let solution = brute_force(&tree, 0);
        assert_eq!(solution.blue_used, 0);
        assert_eq!(solution.cost, 51.0);
    }

    #[test]
    fn subset_count_grows_as_expected() {
        assert_eq!(subset_count(5, 0), 1);
        assert_eq!(subset_count(5, 1), 6);
        assert_eq!(subset_count(5, 2), 16);
        assert_eq!(subset_count(4, 4), 16);
    }

    #[test]
    #[should_panic(expected = "brute force would enumerate")]
    fn oversized_instances_are_rejected() {
        let tree = builders::complete_binary_tree(255);
        let _ = brute_force(&tree, 16);
    }
}
