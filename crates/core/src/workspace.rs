//! Reusable solver state: the arena behind allocation-free SOAR solves.
//!
//! A [`SolverWorkspace`] owns everything a SOAR solve needs besides the instance
//! itself: the [`GatherTables`] arena (every node's DP table in one flat buffer,
//! offsets precomputed from the tree shape) and the [`DpScratch`] ping-pong
//! buffers of the `mCost` recursion. Both are reused across budgets and across
//! instances — buffers shrink by truncation and grow by doubling, so after one
//! warm-up pass on the largest shape a sweep touches, **every subsequent solve
//! performs zero heap allocations**:
//!
//! ```
//! use soar_core::workspace::SolverWorkspace;
//! use soar_topology::builders;
//!
//! let mut tree = builders::complete_binary_tree(31);
//! for v in tree.leaves().collect::<Vec<_>>() {
//!     tree.set_load(v, 5);
//! }
//! let mut ws = SolverWorkspace::new();
//! let warm_up = ws.solve(&tree, 4);            // allocates the arena once
//! let reused = ws.solve(&tree, 4);             // allocation-free replay
//! assert_eq!(warm_up, reused);
//! assert_eq!(ws.last_alloc_events(), 0);       // the stat behind DpStats
//! assert!(ws.peak_bytes() > 0);
//! ```
//!
//! The workspace is deliberately *not* `Sync`: each thread owns one. The
//! [`with_thread_workspace`] helper hands out a per-thread workspace (used by
//! [`SoarSolver`](crate::api::SoarSolver) and the sweep entry points), which is
//! what makes `solve_batch` over a `soar-pool` allocation-free in steady state —
//! every pool worker warms its workspace on the first instance it touches and
//! replays it for the rest of the batch.

use crate::color::soar_color_exact_into;
use crate::gather::{run_gather, run_gather_parallel, run_gather_partial};
use crate::node_dp::{DpKernel, DpScratch};
use crate::solver::Solution;
use crate::tables::GatherTables;
use soar_pool::ThreadPool;
use soar_reduce::Coloring;
use soar_topology::{NodeId, Tree};
use std::cell::RefCell;

/// Below this many switches a single gather is cheaper sequentially than the
/// per-level fork/join of the parallel path (measured on BT instances; levels of
/// small trees hold too few cells to amortize even a mutex-guarded deque push).
pub const PARALLEL_GATHER_MIN_SWITCHES: usize = 2048;

/// From this many switches on, the gather arena elides the `Y` blocks of
/// leaves and single-child chain nodes (see
/// [`GatherTables::y_value`](crate::tables::GatherTables::y_value)): memory
/// then scales with the tree's *effective width* (multi-child nodes) rather
/// than its node count — on a path-heavy 1M-switch tree the arena roughly
/// halves. Below the threshold the full arena is cheap and keeps every `Y`
/// row addressable for inspection.
pub const COMPRESS_MIN_SWITCHES: usize = 65_536;

/// A pass whose reserved capacity exceeds its live working set by this factor
/// counts towards the shrink-on-idle streak.
const SHRINK_FACTOR: usize = 8;
/// Consecutive oversized passes before the workspace releases its buffers.
const SHRINK_AFTER_PASSES: u32 = 16;
/// Workspaces below this reserved footprint never auto-shrink (not worth the
/// re-warm).
const SHRINK_MIN_BYTES: usize = 1 << 20;
/// Reserved footprints above this trip the *fast* shrink path: after only
/// [`SHRINK_BIG_AFTER_PASSES`] oversized passes the arena is truncated to its
/// live size instead of waiting out the full [`SHRINK_AFTER_PASSES`] streak.
/// A resident `soar serve` tenant mix must not pin a 1M-switch solve's
/// multi-gigabyte arena for sixteen passes.
pub const SHRINK_BIG_BYTES: usize = 64 << 20;
/// Oversized-pass streak that truncates a [`SHRINK_BIG_BYTES`]-sized arena.
pub const SHRINK_BIG_AFTER_PASSES: u32 = 2;

/// Reusable state for repeated SOAR solves; see the [module docs](self).
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    tables: GatherTables,
    scratches: Vec<DpScratch>,
    /// The streaming SOAR-Color destination: traces write here in place, so
    /// sweep-heavy callers and online epoch loops run without a per-trace
    /// `Coloring` allocation.
    coloring: Coloring,
    /// Reusable work list of the SOAR-Color traceback.
    trace_stack: Vec<(NodeId, usize, usize)>,
    last_alloc_events: usize,
    total_alloc_events: usize,
    /// `X` cells written by the most recent gather: the full table for a fresh
    /// or replayed pass, only the dirty nodes' cells for a
    /// [`Self::gather_update`] — the work measure behind the incremental-solve
    /// speedup reported by [`DpStats`](crate::api::DpStats).
    last_cells_written: usize,
    peak_bytes: usize,
    /// Consecutive passes whose live working set was a small fraction of the
    /// reserved capacity — the shrink-on-idle trigger.
    oversized_streak: u32,
    /// Requested `mCost` kernel (defaults to [`DpKernel::Auto`]); the
    /// `SOAR_GATHER_KERNEL` environment override, when set, wins.
    kernel: DpKernel,
    /// The env-combined kernel choice, looked up once per workspace lifetime.
    resolved_kernel: Option<DpKernel>,
    /// `Some(_)` forces arena compression on or off; `None` auto-enables it at
    /// [`COMPRESS_MIN_SWITCHES`].
    compress_override: Option<bool>,
    /// Effective (resolved) kernel of the most recent gather.
    last_kernel: DpKernel,
    /// Column tiles executed by the most recent gather (tiled kernel only).
    last_tiles: usize,
    /// Split candidates skipped by the most recent gather's pruning.
    last_pruned_splits: usize,
}

impl SolverWorkspace {
    /// Creates an empty workspace; all buffers are allocated lazily by the first
    /// gather and reused afterwards.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Runs SOAR-Gather sequentially, reusing this workspace's buffers. The
    /// returned tables stay valid (and reusable by [`Self::tables`]) until the
    /// next gather or solve on this workspace.
    pub fn gather(&mut self, tree: &Tree, k: usize) -> &GatherTables {
        let kernel = self.begin_pass();
        let compressed = self.compress_for(tree);
        let mut events;
        {
            let _reset = soar_obs::span!("ws_reset", tree.n_switches());
            events = self.maybe_shrink();
            events += self.tables.reset(tree, k, compressed);
        }
        if self.scratches.is_empty() {
            self.scratches.push(DpScratch::new());
        }
        events += run_gather(&mut self.tables, tree, &mut self.scratches[0], kernel);
        let cells = self.tables.table_cells();
        self.finish_pass(events, cells);
        &self.tables
    }

    /// Incrementally refreshes this workspace's tables after a *localized*
    /// change to the tree: only the nodes in `dirty` are refilled, every other
    /// node's table is reused as-is. This is the `soar-online` epoch hot path —
    /// a single-leaf change on a tree of height `h` rewrites `O(h · k²)` cells
    /// instead of the full `O(n · h · k²)` pass, and a warm workspace does it
    /// with **zero heap allocations**.
    ///
    /// `dirty` must be ancestor-closed and sorted deepest-first (see
    /// [`run_gather_partial`](crate::gather)); the tree's *shape* and the
    /// budget must be unchanged since the full gather that filled this
    /// workspace. Loads and availability may differ freely — those are inputs
    /// of the per-node fill, not of the arena layout. Link rates may differ
    /// too, because every dirty node's ρ prefix block is recomputed before its
    /// refill (the partial rho-arena reset); the rate-change contract is that
    /// a changed up-link of `w` dirties all of `subtree(w)` — exactly the
    /// nodes whose ρ blocks the change moves. The result is bit-identical to a
    /// from-scratch [`Self::gather`] on the same tree.
    ///
    /// The cheap layout checks below (switch count, budget, height, and every
    /// dirty node's row count) catch a workspace warmed on a *different* tree
    /// shape; they cannot see shape drift or rate drift at clean nodes, which
    /// is exactly the contract above — clean nodes are trusted verbatim.
    /// `soar-online` upholds it by fixing the topology for a
    /// [`DynamicInstance`]'s lifetime and marking the whole affected subtree
    /// dirty on link-rate events.
    ///
    /// # Panics
    ///
    /// Panics if the workspace does not currently hold tables laid out for
    /// this tree shape and budget — run a full [`Self::gather`] first.
    pub fn gather_update(&mut self, tree: &Tree, k: usize, dirty: &[NodeId]) -> &GatherTables {
        assert!(
            self.tables.n_switches() == tree.n_switches()
                && self.tables.k == k
                && self.tables.n_levels() == tree.height() + 1,
            "gather_update needs a prior full gather of the same tree shape and budget \
             (workspace holds {} switches at k = {}, asked for {} at k = {k})",
            self.tables.n_switches(),
            self.tables.k,
            tree.n_switches(),
        );
        for &v in dirty {
            assert!(
                self.tables.node_rows(v) == tree.dist_to_dest(v) + 1,
                "gather_update: node {v}'s table layout does not match the tree \
                 (the workspace was warmed on a different shape)"
            );
            // The closure contract (parents of dirty nodes are dirty too) is a
            // caller invariant; O(d²) to check, so debug builds only.
            debug_assert!(
                tree.parent(v).is_none_or(|p| dirty.contains(&p)),
                "gather_update: dirty set is not ancestor-closed (node {v}'s parent is clean)"
            );
        }
        let kernel = self.begin_pass();
        // The span argument is the dirty-closure size — the work measure of an
        // incremental solve, scrapeable straight off a Perfetto trace.
        let _update = soar_obs::span!("gather_update", dirty.len());
        if self.scratches.is_empty() {
            self.scratches.push(DpScratch::new());
        }
        let events = run_gather_partial(
            &mut self.tables,
            tree,
            dirty,
            &mut self.scratches[0],
            kernel,
        );
        let cells = dirty.iter().map(|&v| self.tables.node_cells(v)).sum();
        self.finish_pass(events, cells);
        &self.tables
    }

    /// Runs SOAR-Gather with each tree level processed concurrently on `pool`
    /// (bit-identical results to [`Self::gather`]; see
    /// [`run_gather_parallel`](crate::gather)).
    pub fn gather_parallel(&mut self, tree: &Tree, k: usize, pool: &ThreadPool) -> &GatherTables {
        let kernel = self.begin_pass();
        let compressed = self.compress_for(tree);
        let mut events;
        {
            let _reset = soar_obs::span!("ws_reset", tree.n_switches());
            events = self.maybe_shrink();
            events += self.tables.reset(tree, k, compressed);
        }
        events += run_gather_parallel(&mut self.tables, tree, &mut self.scratches, pool, kernel);
        let cells = self.tables.table_cells();
        self.finish_pass(events, cells);
        &self.tables
    }

    /// Gathers with the global pool when the instance is large enough to amortize
    /// per-level fork/join ([`PARALLEL_GATHER_MIN_SWITCHES`]) and the pool has
    /// more than one worker; sequentially otherwise.
    pub fn gather_auto(&mut self, tree: &Tree, k: usize) -> &GatherTables {
        let pool = soar_pool::global();
        if pool.threads() > 1 && tree.n_switches() >= PARALLEL_GATHER_MIN_SWITCHES {
            self.gather_parallel(tree, k, pool)
        } else {
            self.gather(tree, k)
        }
    }

    /// Solves the instance end to end (gather + color) with this workspace's
    /// buffers, choosing the gather mode like [`Self::gather_auto`].
    ///
    /// The coloring is traced through the workspace's streaming buffers and
    /// cloned once into the returned [`Solution`]; callers that only need to
    /// *read* the placement (sweeps, online epoch loops) should use
    /// [`Self::trace_best`] / [`Self::coloring`] instead, which allocate
    /// nothing once warm.
    pub fn solve(&mut self, tree: &Tree, k: usize) -> Solution {
        self.gather_auto(tree, k);
        let (cost, _) = self.trace_best(tree);
        Solution {
            blue_used: self.coloring.n_blue(),
            cost,
            coloring: self.coloring.clone(),
            budget: k,
        }
    }

    /// Runs SOAR-Color for the best blue count `i ≤ k` of the current tables,
    /// tracing into this workspace's reusable coloring (readable via
    /// [`Self::coloring`] until the next trace). Returns `(cost, best_i)`.
    /// Allocation-free once warm; buffer growths are folded into
    /// [`Self::last_alloc_events`].
    pub fn trace_best(&mut self, tree: &Tree) -> (f64, usize) {
        let (best_i, best_cost) = self.tables.optimum();
        self.trace_exact(tree, best_i);
        (best_cost, best_i)
    }

    /// Runs SOAR-Color for **exactly** `i` blue nodes through the workspace's
    /// reusable buffers (see [`Self::trace_best`]); returns the traced cost
    /// `X_r(1, i)`.
    pub fn trace_exact(&mut self, tree: &Tree, i: usize) -> f64 {
        let _trace = soar_obs::span!("traceback", i);
        let events = soar_color_exact_into(
            tree,
            &self.tables,
            i,
            &mut self.coloring,
            &mut self.trace_stack,
        );
        self.last_alloc_events += events;
        self.total_alloc_events += events;
        self.tables.optimum_with_exactly(i)
    }

    /// The coloring of the most recent [`Self::trace_best`] /
    /// [`Self::trace_exact`] / [`Self::solve`] (empty before the first trace).
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The tables of the most recent gather (empty before the first one).
    pub fn tables(&self) -> &GatherTables {
        &self.tables
    }

    /// Consumes the workspace, returning the tables of the most recent gather.
    pub fn into_tables(self) -> GatherTables {
        self.tables
    }

    /// Number of buffer (re)allocations the most recent gather performed — the
    /// headline stat: **0 once the workspace is warm** for the shapes it sees.
    pub fn last_alloc_events(&self) -> usize {
        self.last_alloc_events
    }

    /// Total buffer (re)allocations over this workspace's lifetime (a handful of
    /// warm-up growths; does not scale with the number of solves).
    pub fn total_alloc_events(&self) -> usize {
        self.total_alloc_events
    }

    /// `X` cells written by the most recent gather on this workspace: the full
    /// table for [`Self::gather`] / [`Self::gather_parallel`], only the dirty
    /// nodes' cells for [`Self::gather_update`]. Fed into
    /// [`DpStats::cells_written`](crate::api::DpStats::cells_written).
    pub fn last_cells_written(&self) -> usize {
        self.last_cells_written
    }

    /// High-water heap footprint of the workspace (arena + scratch), in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Requests an `mCost` kernel for every subsequent gather on this
    /// workspace. The `SOAR_GATHER_KERNEL` environment variable, when set to a
    /// valid kernel name, still wins — it is the fleet-wide debugging override.
    pub fn set_kernel(&mut self, kernel: DpKernel) {
        self.kernel = kernel;
        self.resolved_kernel = None;
    }

    /// Forces arena compression on (`Some(true)`), off (`Some(false)`), or
    /// back to the size-based default (`None`, the
    /// [`COMPRESS_MIN_SWITCHES`] threshold).
    pub fn set_compression(&mut self, compress: Option<bool>) {
        self.compress_override = compress;
    }

    /// Name of the effective kernel the most recent gather ran
    /// (`"scalar" | "pruned" | "tiled"`; `"auto"` before the first gather).
    pub fn last_kernel_name(&self) -> &'static str {
        self.last_kernel.name()
    }

    /// The effective (resolved) kernel of the most recent gather.
    pub fn last_kernel(&self) -> DpKernel {
        self.last_kernel
    }

    /// Column tiles the most recent gather executed (0 for non-tiled kernels).
    pub fn last_tiles(&self) -> usize {
        self.last_tiles
    }

    /// Split candidates the most recent gather's pruning skipped relative to
    /// the full quadratic arg-min search (0 for the scalar kernel).
    pub fn last_pruned_splits(&self) -> usize {
        self.last_pruned_splits
    }

    /// Resolves the kernel for a pass (env override > [`Self::set_kernel`],
    /// cached) and clears the per-pass kernel counters.
    fn begin_pass(&mut self) -> DpKernel {
        let kernel = match self.resolved_kernel {
            Some(k) => k,
            None => {
                let k = std::env::var("SOAR_GATHER_KERNEL")
                    .ok()
                    .and_then(|v| DpKernel::from_name(&v))
                    .unwrap_or(self.kernel);
                self.resolved_kernel = Some(k);
                k
            }
        };
        self.last_kernel = kernel.resolve();
        for scratch in &mut self.scratches {
            scratch.reset_kernel_counters();
        }
        kernel
    }

    /// Whether a gather over `tree` lays out a compressed arena.
    fn compress_for(&self, tree: &Tree) -> bool {
        self.compress_override
            .unwrap_or(tree.n_switches() >= COMPRESS_MIN_SWITCHES)
    }

    /// Releases every retained buffer (arena and scratch), returning the
    /// workspace to its freshly-constructed footprint.
    ///
    /// The reuse policy never shrinks capacity on its own — a thread that once
    /// solved a 16k-switch instance otherwise keeps tens of megabytes warm for
    /// its lifetime. Long-lived threads that are done with large instances can
    /// call this (e.g. through [`with_thread_workspace`]) to give the memory
    /// back; the next gather simply re-warms. The peak statistic keeps its
    /// high-water value, the allocation counters are untouched.
    pub fn clear(&mut self) {
        self.tables = GatherTables::default();
        self.scratches.clear();
        self.scratches.shrink_to_fit();
        self.coloring = Coloring::default();
        self.trace_stack = Vec::new();
        self.oversized_streak = 0;
    }

    fn finish_pass(&mut self, events: usize, cells_written: usize) {
        self.last_alloc_events = events;
        self.total_alloc_events += events;
        self.last_cells_written = cells_written;
        let (tiles, pruned) = self
            .scratches
            .iter()
            .fold((0, 0), |(tiles, pruned), scratch| {
                let (t, p) = scratch.kernel_counters();
                (tiles + t, pruned + p)
            });
        self.last_tiles = tiles;
        self.last_pruned_splits = pruned;
        // Process-wide DP counters: the same quantities DpStats reports
        // per-solve, accumulated for the /metrics exposition.
        soar_obs::counter!("soar_gather_passes_total").inc();
        soar_obs::counter!("soar_gather_cells_written_total").add(cells_written as u64);
        soar_obs::counter!("soar_gather_tiles_total").add(tiles as u64);
        soar_obs::counter!("soar_gather_pruned_splits_total").add(pruned as u64);
        soar_obs::counter!("soar_gather_alloc_events_total").add(events as u64);
        let scratch_bytes = self
            .scratches
            .iter()
            .map(DpScratch::memory_bytes)
            .sum::<usize>();
        let live = self.tables.memory_bytes() + scratch_bytes;
        let reserved = self.tables.capacity_bytes() + scratch_bytes;
        self.peak_bytes = self.peak_bytes.max(reserved);
        if reserved > SHRINK_MIN_BYTES && reserved / SHRINK_FACTOR > live {
            self.oversized_streak += 1;
        } else {
            self.oversized_streak = 0;
        }
    }

    /// Shrink-on-idle: persistent workspaces (thread-locals on pool workers live
    /// as long as the process) must not pin one huge instance's arena forever.
    /// After enough consecutive passes that used only a sliver of the reserved
    /// capacity, give the buffers back *before* the next layout; that pass
    /// re-warms at the current working-set size. Steady workloads never trip
    /// this (reserved ≈ live), so their allocation-free guarantee is untouched.
    ///
    /// Two tiers: arenas above [`SHRINK_BIG_BYTES`] are **truncated to their
    /// live size** after only [`SHRINK_BIG_AFTER_PASSES`] oversized passes —
    /// one 1M-switch solve on a `soar serve` tenant thread must not pin
    /// gigabytes while the rest of the mix is small. Smaller arenas wait out
    /// the full streak and are released wholesale. Returns the number of
    /// buffer reallocations performed, folded into the pass's alloc events so
    /// shrinks stay visible to the allocation accounting.
    fn maybe_shrink(&mut self) -> usize {
        if self.oversized_streak >= SHRINK_AFTER_PASSES {
            self.clear();
            return 0; // the release shows up as re-warm allocations instead
        }
        if self.oversized_streak >= SHRINK_BIG_AFTER_PASSES
            && self.tables.capacity_bytes() > SHRINK_BIG_BYTES
        {
            self.oversized_streak = 0;
            return self.tables.shrink_to_live();
        }
        0
    }
}

thread_local! {
    /// A small stack of idle workspaces per thread. A stack (not a single slot)
    /// because solves can re-enter on one thread: a pool worker waiting on a
    /// level-parallel gather *helps* by executing queued jobs, and a stolen
    /// batch item then solves a second instance mid-solve. Each nesting depth
    /// gets its own workspace, and all of them are returned here and stay warm —
    /// a fresh allocation happens only the first time a depth is reached.
    static IDLE_WORKSPACES: RefCell<Vec<SolverWorkspace>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a persistent per-thread [`SolverWorkspace`].
///
/// Workspaces live as long as the thread, so repeated solves on one thread — a
/// budget sweep, a pool worker chewing through a batch — reuse warm arenas.
/// Re-entrant calls check out a second (equally persistent) workspace instead
/// of aliasing the outer one. If `f` panics, its workspace is dropped rather
/// than returned — the memory is released and the next solve simply re-warms.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
    let mut ws = IDLE_WORKSPACES
        .with(|cell| cell.borrow_mut().pop())
        .unwrap_or_default();
    let result = f(&mut ws);
    IDLE_WORKSPACES.with(|cell| cell.borrow_mut().push(ws));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::soar_gather;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn workspace_gather_matches_fresh_gather() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        for k in [0usize, 2, 4, 7, 1] {
            let fresh = soar_gather(&tree, k);
            let reused = ws.gather(&tree, k);
            assert_eq!(*reused, fresh, "k = {k}");
        }
    }

    #[test]
    fn warm_workspace_performs_zero_allocations() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&tree, 4);
        assert!(ws.last_alloc_events() > 0, "cold pass must allocate");
        let total_after_warmup = ws.total_alloc_events();
        for _ in 0..5 {
            let _ = ws.gather(&tree, 4);
            assert_eq!(ws.last_alloc_events(), 0);
        }
        // Shrinking budgets are free; returning to the warm-up budget too.
        let _ = ws.gather(&tree, 2);
        assert_eq!(ws.last_alloc_events(), 0);
        let _ = ws.gather(&tree, 4);
        assert_eq!(ws.last_alloc_events(), 0);
        assert_eq!(ws.total_alloc_events(), total_after_warmup);
        assert!(ws.peak_bytes() >= ws.tables().memory_bytes());
    }

    #[test]
    fn workspace_solve_matches_module_level_solve() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        for k in [2usize, 4, 3, 2] {
            let solution = ws.solve(&tree, k);
            let fresh = crate::solver::solve(&tree, k);
            assert_eq!(solution, fresh, "k = {k}");
        }
    }

    #[test]
    fn parallel_gather_through_workspace_matches() {
        let pool = ThreadPool::new(3);
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let sequential = soar_gather(&tree, 3);
        let parallel = ws.gather_parallel(&tree, 3, &pool);
        assert_eq!(*parallel, sequential);
        // Warm parallel replays are allocation-free too.
        let _ = ws.gather_parallel(&tree, 3, &pool);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn gather_update_is_bit_identical_and_allocation_free() {
        let mut tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&tree, 3);
        let full_cells = ws.last_cells_written();
        assert_eq!(full_cells, ws.tables().table_cells());

        // A single-leaf change: refill only the root path, bit-identical to a
        // fresh gather, strictly fewer cells, zero allocations.
        tree.set_load(4, 11);
        let updated = ws.gather_update(&tree, 3, &[4, 1, 0]);
        assert_eq!(*updated, soar_gather(&tree, 3));
        assert_eq!(ws.last_alloc_events(), 0);
        assert!(ws.last_cells_written() < full_cells);
        assert!(ws.last_cells_written() > 0);

        // The traced solution out of the updated tables matches a fresh solve.
        let (cost, _) = ws.trace_best(&tree);
        let fresh = crate::solver::solve(&tree, 3);
        assert_eq!(cost, fresh.cost);
        assert_eq!(*ws.coloring(), fresh.coloring);
    }

    #[test]
    fn gather_update_absorbs_link_rate_changes_with_subtree_closure() {
        let mut tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&tree, 3);

        // Slow the up-link of internal node 1 (ω: 1 → 0.5). The ρ prefix
        // blocks of subtree(1) = {1, 3, 4} move, so the dirty set is that
        // subtree plus the ancestor closure — deepest-first.
        tree.set_rate(1, 0.5);
        let updated = ws.gather_update(&tree, 3, &[3, 4, 1, 0]);
        assert_eq!(*updated, soar_gather(&tree, 3));
        assert_eq!(ws.last_alloc_events(), 0, "warm rate update allocates");

        // A leaf up-link only moves its own block: dirty = root path.
        tree.set_rate(6, 0.25);
        let updated = ws.gather_update(&tree, 3, &[6, 2, 0]);
        assert_eq!(*updated, soar_gather(&tree, 3));

        // The traced solution out of the updated tables matches a fresh solve.
        let (cost, _) = ws.trace_best(&tree);
        let fresh = crate::solver::solve(&tree, 3);
        assert_eq!(cost, fresh.cost);
        assert_eq!(*ws.coloring(), fresh.coloring);
    }

    #[test]
    #[should_panic(expected = "prior full gather")]
    fn gather_update_without_a_prior_gather_panics() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather_update(&tree, 3, &[0]);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn gather_update_on_a_same_size_different_shape_tree_panics() {
        // Same switch count, budget *and* height as the fig2 tree, but node 3
        // sits at depth 1 instead of 2 — the per-dirty-node row check must
        // catch the layout mismatch before any table is overwritten.
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&fig2_tree(), 2);
        let lopsided = Tree::from_parents_unit(&[0, 0, 0, 0, 0, 1, 1]).unwrap();
        assert_eq!(lopsided.height(), 2);
        let _ = ws.gather_update(&lopsided, 2, &[3, 0]);
    }

    #[test]
    fn traces_through_the_workspace_are_warm_after_one_solve() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let first = ws.solve(&tree, 4);
        let total = ws.total_alloc_events();
        for _ in 0..3 {
            let again = ws.solve(&tree, 4);
            assert_eq!(again, first);
            assert_eq!(ws.last_alloc_events(), 0, "warm solve allocates nothing");
        }
        assert_eq!(ws.total_alloc_events(), total);
        // Exact traces reuse the same buffers.
        let cost = ws.trace_exact(&tree, 2);
        assert_eq!(cost, 20.0);
        assert_eq!(ws.coloring().n_blue(), 2);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn idle_workspace_shrinks_after_many_small_passes() {
        let big = builders::complete_binary_tree_bt(1024);
        let small = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&big, 16);
        assert!(
            ws.peak_bytes() > SHRINK_MIN_BYTES,
            "the big instance must exceed the shrink floor for this test"
        );
        // Many consecutive tiny passes: the oversized arena must eventually be
        // released (visible as a re-warm allocation on a later pass).
        let mut shrunk = false;
        for _ in 0..SHRINK_AFTER_PASSES + 2 {
            let _ = ws.gather(&small, 2);
            if ws.last_alloc_events() > 0 {
                shrunk = true;
            }
        }
        assert!(shrunk, "oversized workspace never released its buffers");
        // Post-shrink results stay correct, and right-sized passes do not trip
        // the policy again.
        assert_eq!(*ws.gather(&small, 2), soar_gather(&small, 2));
        let _ = ws.gather(&small, 2);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn big_arena_is_truncated_after_a_short_oversized_streak() {
        // A ~hundred-megabyte arena (BT over 16k switches at k = 16) crosses
        // SHRINK_BIG_BYTES: after only SHRINK_BIG_AFTER_PASSES small passes the
        // workspace must truncate to the live working set instead of waiting
        // out the full 16-pass streak — and the truncation must be visible to
        // the allocation accounting.
        let big = builders::complete_binary_tree_bt(16_384);
        let small = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&big, 16);
        assert!(
            ws.tables().capacity_bytes() > SHRINK_BIG_BYTES,
            "the big instance must exceed the fast-shrink floor for this test"
        );
        let mut shrunk_at = None;
        for pass in 0..SHRINK_BIG_AFTER_PASSES + 2 {
            let _ = ws.gather(&small, 2);
            if shrunk_at.is_none() && ws.last_alloc_events() > 0 && pass > 0 {
                shrunk_at = Some(pass);
            }
        }
        assert!(
            ws.tables().capacity_bytes() < SHRINK_BIG_BYTES,
            "the oversized arena was never truncated"
        );
        assert!(
            shrunk_at.is_some_and(|p| p <= SHRINK_BIG_AFTER_PASSES),
            "truncation must happen within the short streak and be counted \
             as alloc events (shrunk at {shrunk_at:?})"
        );
        // Post-shrink passes are correct and allocation-free again.
        assert_eq!(*ws.gather(&small, 2), soar_gather(&small, 2));
        let _ = ws.gather(&small, 2);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn kernel_selection_is_bit_identical_across_kernels() {
        let tree = fig2_tree();
        let reference = soar_gather(&tree, 4);
        for kernel in [
            DpKernel::Scalar,
            DpKernel::Pruned,
            DpKernel::Tiled,
            DpKernel::Auto,
        ] {
            let mut ws = SolverWorkspace::new();
            ws.set_kernel(kernel);
            assert_eq!(
                *ws.gather(&tree, 4),
                reference,
                "kernel {} diverged",
                kernel.name()
            );
            assert_eq!(ws.last_kernel_name(), kernel.resolve().name());
        }
    }

    #[test]
    fn compressed_workspace_solves_identically() {
        let mut tree = builders::complete_binary_tree(63);
        for (i, v) in tree.leaves().collect::<Vec<_>>().into_iter().enumerate() {
            tree.set_load(v, (i % 9 + 1) as u64);
        }
        let mut full = SolverWorkspace::new();
        full.set_compression(Some(false));
        let mut compressed = SolverWorkspace::new();
        compressed.set_compression(Some(true));
        for k in [0usize, 3, 8] {
            let a = full.solve(&tree, k);
            let b = compressed.solve(&tree, k);
            assert_eq!(a, b, "compressed solve diverged at k = {k}");
        }
        assert!(compressed.tables().is_compressed());
        assert!(
            compressed.tables().memory_bytes() < full.tables().memory_bytes(),
            "compression must actually drop Y storage"
        );
    }

    #[test]
    fn clear_releases_buffers_and_rewarms_cleanly() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let fresh = ws.solve(&tree, 3);
        let peak = ws.peak_bytes();
        ws.clear();
        assert_eq!(ws.tables().n_switches(), 0);
        assert_eq!(ws.peak_bytes(), peak, "peak stat survives a clear");
        let rewarmed = ws.solve(&tree, 3);
        assert!(ws.last_alloc_events() > 0, "clear really released buffers");
        assert_eq!(fresh, rewarmed);
    }

    #[test]
    fn thread_workspace_is_reused_and_reentrancy_safe() {
        let tree = fig2_tree();
        let first = with_thread_workspace(|ws| {
            let _ = ws.gather(&tree, 3);
            ws.total_alloc_events()
        });
        let (second_total, nested) = with_thread_workspace(|ws| {
            let _ = ws.gather(&tree, 3);
            // A nested call must not panic on the borrowed cell.
            let nested = with_thread_workspace(|inner| {
                let _ = inner.gather(&tree, 1);
                inner.total_alloc_events()
            });
            (ws.total_alloc_events(), nested)
        });
        assert_eq!(first, second_total, "warm thread workspace did not grow");
        assert!(nested > 0, "the nested fallback workspace is fresh");
    }
}
