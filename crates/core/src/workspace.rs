//! Reusable solver state: the arena behind allocation-free SOAR solves.
//!
//! A [`SolverWorkspace`] owns everything a SOAR solve needs besides the instance
//! itself: the [`GatherTables`] arena (every node's DP table in one flat buffer,
//! offsets precomputed from the tree shape) and the [`DpScratch`] ping-pong
//! buffers of the `mCost` recursion. Both are reused across budgets and across
//! instances — buffers shrink by truncation and grow by doubling, so after one
//! warm-up pass on the largest shape a sweep touches, **every subsequent solve
//! performs zero heap allocations**:
//!
//! ```
//! use soar_core::workspace::SolverWorkspace;
//! use soar_topology::builders;
//!
//! let mut tree = builders::complete_binary_tree(31);
//! for v in tree.leaves().collect::<Vec<_>>() {
//!     tree.set_load(v, 5);
//! }
//! let mut ws = SolverWorkspace::new();
//! let warm_up = ws.solve(&tree, 4);            // allocates the arena once
//! let reused = ws.solve(&tree, 4);             // allocation-free replay
//! assert_eq!(warm_up, reused);
//! assert_eq!(ws.last_alloc_events(), 0);       // the stat behind DpStats
//! assert!(ws.peak_bytes() > 0);
//! ```
//!
//! The workspace is deliberately *not* `Sync`: each thread owns one. The
//! [`with_thread_workspace`] helper hands out a per-thread workspace (used by
//! [`SoarSolver`](crate::api::SoarSolver) and the sweep entry points), which is
//! what makes `solve_batch` over a `soar-pool` allocation-free in steady state —
//! every pool worker warms its workspace on the first instance it touches and
//! replays it for the rest of the batch.

use crate::color::soar_color;
use crate::gather::{run_gather, run_gather_parallel};
use crate::node_dp::DpScratch;
use crate::solver::Solution;
use crate::tables::GatherTables;
use soar_pool::ThreadPool;
use soar_topology::Tree;
use std::cell::RefCell;

/// Below this many switches a single gather is cheaper sequentially than the
/// per-level fork/join of the parallel path (measured on BT instances; levels of
/// small trees hold too few cells to amortize even a mutex-guarded deque push).
pub const PARALLEL_GATHER_MIN_SWITCHES: usize = 2048;

/// A pass whose reserved capacity exceeds its live working set by this factor
/// counts towards the shrink-on-idle streak.
const SHRINK_FACTOR: usize = 8;
/// Consecutive oversized passes before the workspace releases its buffers.
const SHRINK_AFTER_PASSES: u32 = 16;
/// Workspaces below this reserved footprint never auto-shrink (not worth the
/// re-warm).
const SHRINK_MIN_BYTES: usize = 1 << 20;

/// Reusable state for repeated SOAR solves; see the [module docs](self).
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    tables: GatherTables,
    scratches: Vec<DpScratch>,
    last_alloc_events: usize,
    total_alloc_events: usize,
    peak_bytes: usize,
    /// Consecutive passes whose live working set was a small fraction of the
    /// reserved capacity — the shrink-on-idle trigger.
    oversized_streak: u32,
}

impl SolverWorkspace {
    /// Creates an empty workspace; all buffers are allocated lazily by the first
    /// gather and reused afterwards.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Runs SOAR-Gather sequentially, reusing this workspace's buffers. The
    /// returned tables stay valid (and reusable by [`Self::tables`]) until the
    /// next gather or solve on this workspace.
    pub fn gather(&mut self, tree: &Tree, k: usize) -> &GatherTables {
        self.maybe_shrink();
        let mut events = self.tables.reset(tree, k);
        if self.scratches.is_empty() {
            self.scratches.push(DpScratch::new());
        }
        events += run_gather(&mut self.tables, tree, &mut self.scratches[0]);
        self.finish_pass(events);
        &self.tables
    }

    /// Runs SOAR-Gather with each tree level processed concurrently on `pool`
    /// (bit-identical results to [`Self::gather`]; see
    /// [`run_gather_parallel`](crate::gather)).
    pub fn gather_parallel(&mut self, tree: &Tree, k: usize, pool: &ThreadPool) -> &GatherTables {
        self.maybe_shrink();
        let mut events = self.tables.reset(tree, k);
        events += run_gather_parallel(&mut self.tables, tree, &mut self.scratches, pool);
        self.finish_pass(events);
        &self.tables
    }

    /// Gathers with the global pool when the instance is large enough to amortize
    /// per-level fork/join ([`PARALLEL_GATHER_MIN_SWITCHES`]) and the pool has
    /// more than one worker; sequentially otherwise.
    pub fn gather_auto(&mut self, tree: &Tree, k: usize) -> &GatherTables {
        let pool = soar_pool::global();
        if pool.threads() > 1 && tree.n_switches() >= PARALLEL_GATHER_MIN_SWITCHES {
            self.gather_parallel(tree, k, pool)
        } else {
            self.gather(tree, k)
        }
    }

    /// Solves the instance end to end (gather + color) with this workspace's
    /// buffers, choosing the gather mode like [`Self::gather_auto`].
    pub fn solve(&mut self, tree: &Tree, k: usize) -> Solution {
        self.gather_auto(tree, k);
        let (coloring, cost) = soar_color(tree, &self.tables);
        Solution {
            blue_used: coloring.n_blue(),
            cost,
            coloring,
            budget: k,
        }
    }

    /// The tables of the most recent gather (empty before the first one).
    pub fn tables(&self) -> &GatherTables {
        &self.tables
    }

    /// Consumes the workspace, returning the tables of the most recent gather.
    pub fn into_tables(self) -> GatherTables {
        self.tables
    }

    /// Number of buffer (re)allocations the most recent gather performed — the
    /// headline stat: **0 once the workspace is warm** for the shapes it sees.
    pub fn last_alloc_events(&self) -> usize {
        self.last_alloc_events
    }

    /// Total buffer (re)allocations over this workspace's lifetime (a handful of
    /// warm-up growths; does not scale with the number of solves).
    pub fn total_alloc_events(&self) -> usize {
        self.total_alloc_events
    }

    /// High-water heap footprint of the workspace (arena + scratch), in bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Releases every retained buffer (arena and scratch), returning the
    /// workspace to its freshly-constructed footprint.
    ///
    /// The reuse policy never shrinks capacity on its own — a thread that once
    /// solved a 16k-switch instance otherwise keeps tens of megabytes warm for
    /// its lifetime. Long-lived threads that are done with large instances can
    /// call this (e.g. through [`with_thread_workspace`]) to give the memory
    /// back; the next gather simply re-warms. The peak statistic keeps its
    /// high-water value, the allocation counters are untouched.
    pub fn clear(&mut self) {
        self.tables = GatherTables::default();
        self.scratches.clear();
        self.scratches.shrink_to_fit();
        self.oversized_streak = 0;
    }

    fn finish_pass(&mut self, events: usize) {
        self.last_alloc_events = events;
        self.total_alloc_events += events;
        let scratch_bytes = self
            .scratches
            .iter()
            .map(DpScratch::memory_bytes)
            .sum::<usize>();
        let live = self.tables.memory_bytes() + scratch_bytes;
        let reserved = self.tables.capacity_bytes() + scratch_bytes;
        self.peak_bytes = self.peak_bytes.max(reserved);
        if reserved > SHRINK_MIN_BYTES && reserved / SHRINK_FACTOR > live {
            self.oversized_streak += 1;
        } else {
            self.oversized_streak = 0;
        }
    }

    /// Shrink-on-idle: persistent workspaces (thread-locals on pool workers live
    /// as long as the process) must not pin one huge instance's arena forever.
    /// After enough consecutive passes that used only a sliver of the reserved
    /// capacity, give the buffers back *before* the next layout; that pass
    /// re-warms at the current working-set size. Steady workloads never trip
    /// this (reserved ≈ live), so their allocation-free guarantee is untouched.
    fn maybe_shrink(&mut self) {
        if self.oversized_streak >= SHRINK_AFTER_PASSES {
            self.clear();
        }
    }
}

thread_local! {
    /// A small stack of idle workspaces per thread. A stack (not a single slot)
    /// because solves can re-enter on one thread: a pool worker waiting on a
    /// level-parallel gather *helps* by executing queued jobs, and a stolen
    /// batch item then solves a second instance mid-solve. Each nesting depth
    /// gets its own workspace, and all of them are returned here and stay warm —
    /// a fresh allocation happens only the first time a depth is reached.
    static IDLE_WORKSPACES: RefCell<Vec<SolverWorkspace>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a persistent per-thread [`SolverWorkspace`].
///
/// Workspaces live as long as the thread, so repeated solves on one thread — a
/// budget sweep, a pool worker chewing through a batch — reuse warm arenas.
/// Re-entrant calls check out a second (equally persistent) workspace instead
/// of aliasing the outer one. If `f` panics, its workspace is dropped rather
/// than returned — the memory is released and the next solve simply re-warms.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
    let mut ws = IDLE_WORKSPACES
        .with(|cell| cell.borrow_mut().pop())
        .unwrap_or_default();
    let result = f(&mut ws);
    IDLE_WORKSPACES.with(|cell| cell.borrow_mut().push(ws));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::soar_gather;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn workspace_gather_matches_fresh_gather() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        for k in [0usize, 2, 4, 7, 1] {
            let fresh = soar_gather(&tree, k);
            let reused = ws.gather(&tree, k);
            assert_eq!(*reused, fresh, "k = {k}");
        }
    }

    #[test]
    fn warm_workspace_performs_zero_allocations() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&tree, 4);
        assert!(ws.last_alloc_events() > 0, "cold pass must allocate");
        let total_after_warmup = ws.total_alloc_events();
        for _ in 0..5 {
            let _ = ws.gather(&tree, 4);
            assert_eq!(ws.last_alloc_events(), 0);
        }
        // Shrinking budgets are free; returning to the warm-up budget too.
        let _ = ws.gather(&tree, 2);
        assert_eq!(ws.last_alloc_events(), 0);
        let _ = ws.gather(&tree, 4);
        assert_eq!(ws.last_alloc_events(), 0);
        assert_eq!(ws.total_alloc_events(), total_after_warmup);
        assert!(ws.peak_bytes() >= ws.tables().memory_bytes());
    }

    #[test]
    fn workspace_solve_matches_module_level_solve() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        for k in [2usize, 4, 3, 2] {
            let solution = ws.solve(&tree, k);
            let fresh = crate::solver::solve(&tree, k);
            assert_eq!(solution, fresh, "k = {k}");
        }
    }

    #[test]
    fn parallel_gather_through_workspace_matches() {
        let pool = ThreadPool::new(3);
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let sequential = soar_gather(&tree, 3);
        let parallel = ws.gather_parallel(&tree, 3, &pool);
        assert_eq!(*parallel, sequential);
        // Warm parallel replays are allocation-free too.
        let _ = ws.gather_parallel(&tree, 3, &pool);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn idle_workspace_shrinks_after_many_small_passes() {
        let big = builders::complete_binary_tree_bt(1024);
        let small = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather(&big, 16);
        assert!(
            ws.peak_bytes() > SHRINK_MIN_BYTES,
            "the big instance must exceed the shrink floor for this test"
        );
        // Many consecutive tiny passes: the oversized arena must eventually be
        // released (visible as a re-warm allocation on a later pass).
        let mut shrunk = false;
        for _ in 0..SHRINK_AFTER_PASSES + 2 {
            let _ = ws.gather(&small, 2);
            if ws.last_alloc_events() > 0 {
                shrunk = true;
            }
        }
        assert!(shrunk, "oversized workspace never released its buffers");
        // Post-shrink results stay correct, and right-sized passes do not trip
        // the policy again.
        assert_eq!(*ws.gather(&small, 2), soar_gather(&small, 2));
        let _ = ws.gather(&small, 2);
        assert_eq!(ws.last_alloc_events(), 0);
    }

    #[test]
    fn clear_releases_buffers_and_rewarms_cleanly() {
        let tree = fig2_tree();
        let mut ws = SolverWorkspace::new();
        let fresh = ws.solve(&tree, 3);
        let peak = ws.peak_bytes();
        ws.clear();
        assert_eq!(ws.tables().n_switches(), 0);
        assert_eq!(ws.peak_bytes(), peak, "peak stat survives a clear");
        let rewarmed = ws.solve(&tree, 3);
        assert!(ws.last_alloc_events() > 0, "clear really released buffers");
        assert_eq!(fresh, rewarmed);
    }

    #[test]
    fn thread_workspace_is_reused_and_reentrancy_safe() {
        let tree = fig2_tree();
        let first = with_thread_workspace(|ws| {
            let _ = ws.gather(&tree, 3);
            ws.total_alloc_events()
        });
        let (second_total, nested) = with_thread_workspace(|ws| {
            let _ = ws.gather(&tree, 3);
            // A nested call must not panic on the borrowed cell.
            let nested = with_thread_workspace(|inner| {
                let _ = inner.gather(&tree, 1);
                inner.total_alloc_events()
            });
            (ws.total_alloc_events(), nested)
        });
        assert_eq!(first, second_total, "warm thread workspace did not grow");
        assert!(nested > 0, "the nested fallback workspace is fresh");
    }
}
