//! SOAR-Color (Algorithm 4 of the paper): the top-down traceback that turns the DP
//! tables of [`crate::gather`] into an actual set of blue switches.
//!
//! The destination hands the root the budget and the distance `ℓ = 1`; every switch
//! then (i) decides its own color by comparing the two conditioned potentials
//! `Y_v(ℓ*, i, B)` and `Y_v(ℓ*, i, R)` recorded during the gather phase, and (ii) tells
//! each child how many blue nodes to place in its subtree (replaying the recorded
//! `mSplit` decisions) and at what distance from the nearest barrier it now sits.

use crate::tables::{Color, GatherTables};
use soar_reduce::Coloring;
use soar_topology::{NodeId, Tree, ROOT};

/// Runs SOAR-Color using tables produced by [`crate::gather::soar_gather`] and the
/// *exact* number of blue nodes `i` to distribute (usually the arg-min over `i ≤ k`
/// computed by [`GatherTables::optimum`]).
///
/// Returns the resulting coloring; its utilization equals `X_r(1, i)`.
pub fn soar_color_exact(tree: &Tree, tables: &GatherTables, i: usize) -> Coloring {
    let mut coloring = Coloring::all_red(0);
    let mut stack = Vec::new();
    soar_color_exact_into(tree, tables, i, &mut coloring, &mut stack);
    coloring
}

/// Like [`soar_color_exact`], but tracing into caller-provided buffers: the
/// coloring is reset to all-red in place and the work list reuses `stack`'s
/// storage, so a warm caller performs **zero heap allocations** per trace.
///
/// Returns the number of buffers that had to grow (0 once warm) — the same
/// convention as the gather allocation counters, which is how the solver
/// workspace folds color-phase allocations into
/// [`DpStats::alloc_events`](crate::api::DpStats::alloc_events). This is the
/// streaming path behind sweep-heavy callers and `soar-online`'s epoch loop.
pub fn soar_color_exact_into(
    tree: &Tree,
    tables: &GatherTables,
    i: usize,
    coloring: &mut Coloring,
    stack: &mut Vec<(NodeId, usize, usize)>,
) -> usize {
    assert!(
        i <= tables.k,
        "requested {i} blue nodes but the tables were computed for k = {}",
        tables.k
    );
    let mut grew = coloring.reset_all_red(tree.n_switches());
    // Work list of (node, blue nodes to place in its subtree, distance to barrier).
    stack.clear();
    if stack.capacity() == 0 {
        grew += 1;
    }
    stack.push((ROOT, i, 1));
    let stack_capacity = stack.capacity();
    while let Some((v, budget, l)) = stack.pop() {
        assign(tree, tables, v, budget, l, coloring, stack);
    }
    grew + usize::from(stack.capacity() != stack_capacity)
}

/// Runs SOAR-Color for the best budget `i ≤ k` (the "at most k" semantics of the φ-BIC
/// problem) and returns the coloring together with its optimal utilization.
pub fn soar_color(tree: &Tree, tables: &GatherTables) -> (Coloring, f64) {
    let (best_i, best_cost) = tables.optimum();
    let coloring = soar_color_exact(tree, tables, best_i);
    (coloring, best_cost)
}

/// Processes one switch: decides its color and pushes its children onto the work list.
///
/// `tables.node(v)` hands back a borrowed [`NodeTableView`](crate::tables::NodeTableView)
/// into the gather arena — the traceback allocates nothing beyond its work list.
fn assign(
    tree: &Tree,
    tables: &GatherTables,
    v: NodeId,
    budget: usize,
    l: usize,
    coloring: &mut Coloring,
    stack: &mut Vec<(NodeId, usize, usize)>,
) {
    // `Y` reads go through `y_value`, which serves elided nodes (compressed
    // arenas: leaves and single-child chain nodes) bit-identically to the
    // stored rows; split reads below only happen for multi-child nodes, whose
    // blocks are always stored.
    if tree.is_leaf(v) {
        // A leaf goes blue when it has budget, is available, and aggregating does not
        // cost more than forwarding its own workers (Alg. 4 colors any budgeted leaf;
        // the extra guard only matters for degenerate zero-load leaves).
        if budget > 0
            && tree.available(v)
            && tables.y_value(tree, v, l, budget, Color::Blue)
                <= tables.y_value(tree, v, l, budget, Color::Red)
        {
            coloring.set_blue(v);
        }
        return;
    }

    let table = tables.node(v);
    let blue = tables.y_value(tree, v, l, budget, Color::Blue)
        < tables.y_value(tree, v, l, budget, Color::Red);
    if blue {
        coloring.set_blue(v);
    }
    let color = if blue { Color::Blue } else { Color::Red };
    // Children sit at distance 1 from their barrier if v is blue, ℓ + 1 otherwise.
    let child_l = if blue { 1 } else { l + 1 };

    let children = tree.children(v);
    let mut remaining = budget;
    // Children are peeled off in reverse order (c_C first), mirroring the prefix
    // structure of the gather recursion: the split recorded at stage m tells how many
    // blue nodes go to c_m, the rest stays with the prefix c_1 .. c_{m-1} (and v).
    for m in (2..=children.len()).rev() {
        let j = table.split(m, l, remaining, color) as usize;
        stack.push((children[m - 1], j, child_l));
        remaining -= j;
    }
    // The first child receives whatever remains, minus the blue node consumed by v.
    let first_share = if blue {
        remaining.saturating_sub(1)
    } else {
        remaining
    };
    stack.push((children[0], first_share, child_l));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::soar_gather;
    use soar_reduce::cost;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn coloring_cost_matches_table_optimum_fig2() {
        let tree = fig2_tree();
        for k in 0..=7 {
            let tables = soar_gather(&tree, k);
            let (coloring, cost_claimed) = soar_color(&tree, &tables);
            let cost_actual = cost::phi(&tree, &coloring);
            assert!(
                (cost_claimed - cost_actual).abs() < 1e-9,
                "k = {k}: claimed {cost_claimed}, actual {cost_actual}"
            );
            assert!(coloring.n_blue() <= k);
        }
    }

    #[test]
    fn fig2_k2_produces_the_unique_optimal_set() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 2);
        let (coloring, cost_value) = soar_color(&tree, &tables);
        assert_eq!(cost_value, 20.0);
        // Fig. 3(b): the unique optimum for k = 2 is {leaf with load 6, right internal}.
        assert_eq!(coloring.blue_nodes(), vec![2, 4]);
    }

    #[test]
    fn fig3_k3_produces_the_unique_optimal_set() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 3);
        let (coloring, cost_value) = soar_color(&tree, &tables);
        assert_eq!(cost_value, 15.0);
        // Fig. 3(c): the unique optimum for k = 3 is the three heaviest leaves.
        assert_eq!(coloring.blue_nodes(), vec![4, 5, 6]);
    }

    #[test]
    fn exact_budget_traceback_matches_exact_table_entry() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 4);
        for i in 0..=4 {
            let coloring = soar_color_exact(&tree, &tables, i);
            let actual = cost::phi(&tree, &coloring);
            assert!(
                (actual - tables.optimum_with_exactly(i)).abs() < 1e-9,
                "exact i = {i}"
            );
            assert!(coloring.n_blue() <= i);
        }
    }

    #[test]
    fn streaming_trace_reuses_buffers_and_matches_the_owned_path() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 4);
        let mut coloring = Coloring::all_red(0);
        let mut stack = Vec::new();
        let cold = soar_color_exact_into(&tree, &tables, 2, &mut coloring, &mut stack);
        assert!(cold > 0, "the first trace must allocate its buffers");
        assert_eq!(coloring, soar_color_exact(&tree, &tables, 2));
        for i in [0usize, 1, 3, 4, 2] {
            let grew = soar_color_exact_into(&tree, &tables, i, &mut coloring, &mut stack);
            assert_eq!(grew, 0, "warm traces are allocation-free (i = {i})");
            assert_eq!(coloring, soar_color_exact(&tree, &tables, i));
        }
    }

    #[test]
    #[should_panic(expected = "tables were computed for k")]
    fn exceeding_the_table_budget_panics() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 2);
        let _ = soar_color_exact(&tree, &tables, 3);
    }

    #[test]
    fn availability_is_respected_by_the_traceback() {
        let mut tree = fig2_tree();
        // Only the two internal switches may aggregate.
        for v in [0usize, 3, 4, 5, 6] {
            tree.set_available(v, false);
        }
        let tables = soar_gather(&tree, 2);
        let (coloring, cost_value) = soar_color(&tree, &tables);
        for v in coloring.blue_nodes() {
            assert!(tree.available(v));
        }
        assert_eq!(coloring.blue_nodes(), vec![1, 2]);
        assert_eq!(cost_value, 21.0); // the Level placement is optimal within Λ
    }

    #[test]
    fn zero_budget_yields_all_red() {
        let tree = fig2_tree();
        let tables = soar_gather(&tree, 0);
        let (coloring, cost_value) = soar_color(&tree, &tables);
        assert_eq!(coloring.n_blue(), 0);
        assert_eq!(cost_value, 51.0);
    }

    #[test]
    fn zero_load_instance_uses_no_blue_nodes() {
        let tree = builders::complete_binary_tree(7); // no load anywhere
        let tables = soar_gather(&tree, 3);
        let (coloring, cost_value) = soar_color(&tree, &tables);
        assert_eq!(cost_value, 0.0);
        assert_eq!(coloring.n_blue(), 0, "no traffic, so no aggregation needed");
    }
}
