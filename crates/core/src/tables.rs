//! Dynamic-programming tables produced by SOAR-Gather and consumed by SOAR-Color.
//!
//! For every switch `v` the gather phase materialises the parameterized potential
//! function of the paper (Sec. 6.1):
//!
//! * `X_v(ℓ, i)` — the minimum potential `π_v(ℓ, U)` over all sets `U` of `i` blue
//!   nodes inside the subtree `T_v`, where `ℓ` is the hop distance from `v` to its
//!   closest blue ancestor (or to the destination `d`);
//! * `Y_v^{C(v)}(ℓ, i, B)` / `Y_v^{C(v)}(ℓ, i, R)` — the same minimum conditioned on
//!   the color of `v` itself (blue / red), i.e. the final stage of the per-child
//!   prefix recursion (`X_v = min(Y_B, Y_R)`);
//! * the **split decisions**: for every child index `m ≥ 2` and every `(ℓ, i, color)`,
//!   how many of the `i` blue nodes the optimal partition hands to the subtree of the
//!   `m`-th child (the `arg min` of the paper's `mCost`, recorded so that SOAR-Color
//!   can trace the optimum without recomputing it).
//!
//! The parameter ranges are `ℓ ∈ {0, ..., D(v) + 1}` (up to the distance from `v` to
//! the destination) and `i ∈ {0, ..., k}`.
//!
//! ## Storage: one arena per gather pass
//!
//! [`GatherTables`] does **not** hold one heap object per switch. All per-switch
//! tables live in five flat arenas (`X`, `Y_B`, `Y_R`, the ρ prefix sums, and the
//! split decisions), with per-node offsets precomputed from the tree shape by
//! [`GatherTables::reset`]. Nodes are laid out **grouped by depth** (shallowest
//! level first), which gives the gather pass two properties for free:
//!
//! * a node's children always live *after* the node's own level in the arena, so
//!   one `split_at_mut` per level yields disjoint mutable output blocks and shared
//!   read-only child blocks — children's `X` tables are borrowed as slices, never
//!   cloned;
//! * all nodes of one level can be filled **concurrently** (they only read the
//!   deeper region), which is what `soar-pool`'s level-parallel gather exploits.
//!
//! The arenas shrink-by-truncate and grow-by-doubling, so a
//! [`SolverWorkspace`](crate::workspace::SolverWorkspace) that replays instances of
//! the same shape performs **zero heap allocations** after its first pass.
//!
//! Individual tables are read through the borrowed [`NodeTableView`]; the owned
//! [`NodeTable`] remains for the distributed dataplane, where each switch actor
//! holds (only) its own table.

use soar_topology::{NodeId, Tree};

/// Sentinel for an infeasible configuration (e.g. coloring an unavailable switch blue).
pub const INF: f64 = f64::INFINITY;

/// Identifies the color a potential value is conditioned on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Aggregating switch (`v ∈ U`).
    Blue,
    /// Forwarding switch (`v ∉ U`).
    Red,
}

/// Read access to one switch's DP table, implemented by both the owned
/// [`NodeTable`] (dataplane actors) and the arena-backed [`NodeTableView`]
/// (centralized gather), so SOAR-Color's decision helpers
/// ([`crate::node_dp::decide_color`], [`crate::node_dp::child_budgets`]) work on
/// either representation.
pub trait DpTable {
    /// Number of distinct `ℓ` values of this table.
    fn n_l(&self) -> usize;
    /// Number of distinct `i` values (`k + 1`).
    fn n_i(&self) -> usize;
    /// `X_v(ℓ, i)`.
    fn x(&self, l: usize, i: usize) -> f64;
    /// Final-stage `Y_v(ℓ, i, color)`.
    fn y(&self, l: usize, i: usize, color: Color) -> f64;
    /// The recorded split for child `c_m` (`m ≥ 2`).
    fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32;
}

#[inline]
fn color_slot(color: Color) -> usize {
    match color {
        Color::Blue => 0,
        Color::Red => 1,
    }
}

/// The per-switch DP table as an owned value.
///
/// This is the representation a switch ships around in the *distributed* rendition
/// of SOAR (`soar-dataplane`), where no shared arena exists. The centralized
/// gather pass instead writes the same layout directly into the
/// [`GatherTables`] arena and reads it back through [`NodeTableView`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTable {
    /// Number of distinct `ℓ` values: `D(v) + 2` (i.e. `0 ..= dist_to_dest(v)`).
    pub n_l: usize,
    /// Number of distinct `i` values: `k + 1`.
    pub n_i: usize,
    /// `X_v(ℓ, i)`, row-major in `ℓ`.
    pub x: Vec<f64>,
    /// Final-stage `Y_v(ℓ, i, B)`.
    pub y_blue: Vec<f64>,
    /// Final-stage `Y_v(ℓ, i, R)`.
    pub y_red: Vec<f64>,
    /// `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1` (prefix sums of ρ up the tree).
    pub path_rho: Vec<f64>,
    /// Split decisions for children `c_2 ..= c_{C(v)}`, flat in `(m, ℓ, i, color)`
    /// order: the block of child `c_m` starts at `(m - 2) · n_l · n_i · 2`.
    pub splits: Vec<u32>,
    n_split_children: usize,
}

impl NodeTable {
    /// Creates an empty (all-zero / all-infinite) table for a node.
    pub fn new(n_l: usize, n_i: usize, n_children: usize, path_rho: Vec<f64>) -> Self {
        let cells = n_l * n_i;
        let n_split_children = n_children.saturating_sub(1);
        NodeTable {
            n_l,
            n_i,
            x: vec![0.0; cells],
            y_blue: vec![INF; cells],
            y_red: vec![INF; cells],
            path_rho,
            splits: vec![0; n_split_children * cells * 2],
            n_split_children,
        }
    }

    #[inline]
    fn idx(&self, l: usize, i: usize) -> usize {
        debug_assert!(l < self.n_l, "l = {l} out of range {}", self.n_l);
        debug_assert!(i < self.n_i, "i = {i} out of range {}", self.n_i);
        l * self.n_i + i
    }

    /// `X_v(ℓ, i)`.
    #[inline]
    pub fn x(&self, l: usize, i: usize) -> f64 {
        self.x[self.idx(l, i)]
    }

    /// Sets `X_v(ℓ, i)`.
    #[inline]
    pub fn set_x(&mut self, l: usize, i: usize, value: f64) {
        let idx = self.idx(l, i);
        self.x[idx] = value;
    }

    /// Final-stage `Y_v(ℓ, i, color)`.
    #[inline]
    pub fn y(&self, l: usize, i: usize, color: Color) -> f64 {
        let idx = self.idx(l, i);
        match color {
            Color::Blue => self.y_blue[idx],
            Color::Red => self.y_red[idx],
        }
    }

    /// Sets the final-stage `Y_v(ℓ, i, color)`.
    #[inline]
    pub fn set_y(&mut self, l: usize, i: usize, color: Color, value: f64) {
        let idx = self.idx(l, i);
        match color {
            Color::Blue => self.y_blue[idx] = value,
            Color::Red => self.y_red[idx] = value,
        }
    }

    /// The recorded split for child `c_m` (`m ≥ 2`), i.e. how many blue nodes the
    /// optimal partition of `Y_v^m(ℓ, i, color)` grants to the subtree of `c_m`.
    #[inline]
    pub fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32 {
        debug_assert!(m >= 2, "splits are only recorded for children m >= 2");
        let base = (m - 2) * self.n_l * self.n_i * 2;
        self.splits[base + self.idx(l, i) * 2 + color_slot(color)]
    }

    /// Records the split for child `c_m` (`m ≥ 2`).
    #[inline]
    pub fn set_split(&mut self, m: usize, l: usize, i: usize, color: Color, j: u32) {
        debug_assert!(m >= 2);
        let idx = (m - 2) * self.n_l * self.n_i * 2 + self.idx(l, i) * 2 + color_slot(color);
        self.splits[idx] = j;
    }

    /// Number of children with recorded splits (`C(v) - 1` for internal nodes).
    pub fn n_split_children(&self) -> usize {
        self.n_split_children
    }

    /// `ρ(v, Aᵉ_v)` — the summed transmission time of the first `ℓ` up-links above `v`.
    #[inline]
    pub fn rho_up(&self, l: usize) -> f64 {
        self.path_rho[l]
    }

    /// Approximate heap footprint of this table in bytes (used by diagnostics).
    pub fn memory_bytes(&self) -> usize {
        (self.x.len() + self.y_blue.len() + self.y_red.len() + self.path_rho.len()) * 8
            + self.splits.len() * 4
    }
}

impl DpTable for NodeTable {
    fn n_l(&self) -> usize {
        self.n_l
    }
    fn n_i(&self) -> usize {
        self.n_i
    }
    fn x(&self, l: usize, i: usize) -> f64 {
        NodeTable::x(self, l, i)
    }
    fn y(&self, l: usize, i: usize, color: Color) -> f64 {
        NodeTable::y(self, l, i, color)
    }
    fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32 {
        NodeTable::split(self, m, l, i, color)
    }
}

/// A borrowed view of one switch's DP table inside the [`GatherTables`] arena.
#[derive(Debug, Clone, Copy)]
pub struct NodeTableView<'a> {
    /// Number of distinct `ℓ` values of this node's table.
    pub n_l: usize,
    /// Number of distinct `i` values (`k + 1`).
    pub n_i: usize,
    x: &'a [f64],
    y_blue: &'a [f64],
    y_red: &'a [f64],
    rho: &'a [f64],
    splits: &'a [u32],
}

impl NodeTableView<'_> {
    #[inline]
    fn idx(&self, l: usize, i: usize) -> usize {
        debug_assert!(l < self.n_l, "l = {l} out of range {}", self.n_l);
        debug_assert!(i < self.n_i, "i = {i} out of range {}", self.n_i);
        l * self.n_i + i
    }

    /// `X_v(ℓ, i)`.
    #[inline]
    pub fn x(&self, l: usize, i: usize) -> f64 {
        self.x[self.idx(l, i)]
    }

    /// Final-stage `Y_v(ℓ, i, color)`.
    #[inline]
    pub fn y(&self, l: usize, i: usize, color: Color) -> f64 {
        let idx = self.idx(l, i);
        match color {
            Color::Blue => self.y_blue[idx],
            Color::Red => self.y_red[idx],
        }
    }

    /// The recorded split for child `c_m` (`m ≥ 2`).
    #[inline]
    pub fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32 {
        debug_assert!(m >= 2, "splits are only recorded for children m >= 2");
        let base = (m - 2) * self.n_l * self.n_i * 2;
        self.splits[base + self.idx(l, i) * 2 + color_slot(color)]
    }

    /// Number of children with recorded splits (`C(v) - 1` for internal nodes).
    pub fn n_split_children(&self) -> usize {
        if self.n_l * self.n_i == 0 {
            0
        } else {
            self.splits.len() / (self.n_l * self.n_i * 2)
        }
    }

    /// `ρ(v, Aᵉ_v)` — the summed transmission time of the first `ℓ` up-links above `v`.
    #[inline]
    pub fn rho_up(&self, l: usize) -> f64 {
        self.rho[l]
    }

    /// The full `X` table of this node as a flat row-major slice (what a child
    /// ships to its parent in the distributed rendition).
    pub fn x_slice(&self) -> &[f64] {
        self.x
    }
}

impl DpTable for NodeTableView<'_> {
    fn n_l(&self) -> usize {
        self.n_l
    }
    fn n_i(&self) -> usize {
        self.n_i
    }
    fn x(&self, l: usize, i: usize) -> f64 {
        NodeTableView::x(self, l, i)
    }
    fn y(&self, l: usize, i: usize, color: Color) -> f64 {
        NodeTableView::y(self, l, i, color)
    }
    fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32 {
        NodeTableView::split(self, m, l, i, color)
    }
}

/// All per-switch tables produced by one run of SOAR-Gather, stored in flat,
/// reusable arenas (see the [module docs](self) for the layout).
///
/// ## Compressed mode
///
/// For very large trees the arena supports **per-level compression**: nodes with
/// at most one child (every leaf and every node of a path-like chain) do not
/// store their final-stage `Y` rows at all. Such a node's `Y` values are a
/// closed-form function of its own ρ block, load, availability and (for a
/// single-child node) its child's `X` table — exactly the expressions the
/// gather's leaf base case / first-child fold evaluates — so
/// [`GatherTables::y_value`] recomputes them bit-identically on demand and
/// SOAR-Color never notices the elision. The `X` arena stays dense (parents
/// fold children's `X` rows), but `Y` memory scales with the tree's *effective
/// width* (number of multi-child nodes) rather than its node count: on a
/// leaf-dominated fat-tree this removes the majority of `Y` storage, and on a
/// path it removes all of it. Compression is chosen per layout by
/// [`GatherTables::reset`]; the solver workspace enables it automatically above
/// [`crate::workspace::COMPRESS_MIN_SWITCHES`] switches.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GatherTables {
    /// The budget the tables were computed for.
    pub k: usize,
    /// Columns per row: `k + 1`.
    pub(crate) n_i: usize,
    /// Whether ≤1-child nodes' `Y` rows are elided from the `y_*` arenas.
    pub(crate) compressed: bool,
    // ---- per-node layout, indexed by NodeId ----
    /// Rows of node `v`'s table: `D(v) + 2`.
    pub(crate) n_l: Vec<u32>,
    /// Offset (in cells) of node `v`'s block inside `x` / `y_blue` / `y_red`.
    pub(crate) cell_off: Vec<usize>,
    /// Offset (in cells) of node `v`'s block inside `y_blue` / `y_red`. Equal to
    /// `cell_off` in full mode; in compressed mode a running cursor that elided
    /// nodes share with their successor (zero-length blocks keep slicing uniform).
    pub(crate) y_off: Vec<usize>,
    /// Offset of node `v`'s ρ prefix block inside `rho` (length `n_l[v]`).
    pub(crate) rho_off: Vec<usize>,
    /// Offset (in `u32`s) of node `v`'s split block inside `splits`.
    pub(crate) split_off: Vec<usize>,
    /// Length (in `u32`s) of node `v`'s split block: `(C(v) - 1) · cells · 2`.
    pub(crate) split_len: Vec<usize>,
    // ---- level structure (levels laid out shallowest first) ----
    /// Node ids sorted by `(depth, id)` — the arena order.
    pub(crate) level_nodes: Vec<NodeId>,
    /// Per depth `d`: index range of its nodes inside `level_nodes`.
    pub(crate) level_ranges: Vec<(usize, usize)>,
    /// Per depth `d`: cell offset one past its last node's block.
    pub(crate) level_cell_end: Vec<usize>,
    /// Per depth `d`: `y` offset one past its last node's block.
    pub(crate) level_y_end: Vec<usize>,
    /// Per depth `d`: split offset one past its last node's block.
    pub(crate) level_split_end: Vec<usize>,
    // ---- arenas ----
    pub(crate) x: Vec<f64>,
    pub(crate) y_blue: Vec<f64>,
    pub(crate) y_red: Vec<f64>,
    pub(crate) rho: Vec<f64>,
    pub(crate) splits: Vec<u32>,
}

/// Shrinks or grows `v` to exactly `len` entries, returning `1` when backing
/// storage had to be (re)allocated. Shrinking truncates (no write, capacity
/// kept); growing reserves at least double to amortize repeated small growths.
fn fit<T: Copy>(v: &mut Vec<T>, len: usize, fill: T) -> usize {
    if len <= v.len() {
        v.truncate(len);
        0
    } else {
        let grew = if v.capacity() < len {
            v.reserve(len.max(v.capacity() * 2) - v.len());
            1
        } else {
            0
        };
        v.resize(len, fill);
        grew
    }
}

impl GatherTables {
    /// Creates tables laid out for the tree and budget, with all values zeroed
    /// (the gather pass overwrites every cell). Full (uncompressed) mode.
    pub(crate) fn new(tree: &Tree, k: usize) -> Self {
        let mut tables = GatherTables::default();
        tables.reset(tree, k, false);
        tables
    }

    /// Recomputes the arena layout for `tree` and budget `k`, reusing all backing
    /// storage. Returns the number of buffers that had to grow (0 once the
    /// workspace is warm for this shape — the alloc-count fed into
    /// [`crate::api::DpStats`]).
    ///
    /// `compressed` selects the `Y`-elision layout for ≤1-child nodes (see the
    /// [type docs](GatherTables)); it must be decided per layout, before any
    /// values are written.
    ///
    /// Only the layout is computed here; values are written by the gather pass,
    /// which overwrites every cell, so no clearing is needed.
    pub(crate) fn reset(&mut self, tree: &Tree, k: usize, compressed: bool) -> usize {
        let n = tree.n_switches();
        let n_i = k + 1;
        self.k = k;
        self.n_i = n_i;
        self.compressed = compressed;
        let mut grew = 0;

        grew += fit(&mut self.n_l, n, 0);
        grew += fit(&mut self.cell_off, n, 0);
        grew += fit(&mut self.y_off, n, 0);
        grew += fit(&mut self.rho_off, n, 0);
        grew += fit(&mut self.split_off, n, 0);
        grew += fit(&mut self.split_len, n, 0);
        grew += fit(&mut self.level_nodes, n, 0);
        let n_levels = tree.height() + 1;
        grew += fit(&mut self.level_ranges, n_levels, (0, 0));
        grew += fit(&mut self.level_cell_end, n_levels, 0);
        grew += fit(&mut self.level_y_end, n_levels, 0);
        grew += fit(&mut self.level_split_end, n_levels, 0);

        // Counting sort of the nodes by depth: first counts, then starts, then
        // placement — all in the reused buffers.
        for range in self.level_ranges.iter_mut() {
            *range = (0, 0);
        }
        for v in 0..n {
            self.level_ranges[tree.depth(v)].1 += 1;
        }
        let mut cursor = 0;
        for range in self.level_ranges.iter_mut() {
            let count = range.1;
            *range = (cursor, cursor);
            cursor += count;
        }
        for v in 0..n {
            let d = tree.depth(v);
            self.level_nodes[self.level_ranges[d].1] = v;
            self.level_ranges[d].1 += 1;
        }

        // Arena offsets in level order. The `y` cursor skips elided nodes in
        // compressed mode (they keep a zero-length block at the running cursor,
        // so slicing stays uniform and per-level `y` regions stay contiguous).
        let (mut cells, mut y_cells, mut rho_cells, mut split_cells) =
            (0usize, 0usize, 0usize, 0usize);
        for d in 0..n_levels {
            let (start, end) = self.level_ranges[d];
            for idx in start..end {
                let v = self.level_nodes[idx];
                let n_l = tree.dist_to_dest(v) + 1;
                self.n_l[v] = n_l as u32;
                self.cell_off[v] = cells;
                self.y_off[v] = y_cells;
                self.rho_off[v] = rho_cells;
                self.split_off[v] = split_cells;
                let node_cells = n_l * n_i;
                let split_len = tree.n_children(v).saturating_sub(1) * node_cells * 2;
                self.split_len[v] = split_len;
                cells += node_cells;
                if !(compressed && tree.n_children(v) <= 1) {
                    y_cells += node_cells;
                }
                rho_cells += n_l;
                split_cells += split_len;
            }
            self.level_cell_end[d] = cells;
            self.level_y_end[d] = y_cells;
            self.level_split_end[d] = split_cells;
        }

        grew += fit(&mut self.x, cells, 0.0);
        grew += fit(&mut self.y_blue, y_cells, 0.0);
        grew += fit(&mut self.y_red, y_cells, 0.0);
        grew += fit(&mut self.rho, rho_cells, 0.0);
        grew += fit(&mut self.splits, split_cells, 0);

        // The ρ prefix sums are part of the layout (they only depend on the tree):
        // entry ℓ of node v's block is the summed ρ of the first ℓ up-links,
        // accumulated in the same order as `Tree::path_rho`.
        for v in 0..n {
            let off = self.rho_off[v];
            let n_l = self.n_l[v] as usize;
            self.rho[off] = 0.0;
            let mut acc = 0.0;
            let mut cur = Some(v);
            for l in 1..n_l {
                let u = cur.expect("n_l matches the root-path length");
                acc += tree.rho(u);
                self.rho[off + l] = acc;
                cur = tree.parent(u);
            }
        }
        grew
    }

    /// Recomputes node `v`'s ρ prefix block against the tree's *current* link
    /// rates — the same accumulation as [`Self::reset`], restricted to one
    /// node, so the stored values are bit-identical when the rates are
    /// unchanged. This is the partial rho-arena reset behind link-rate (ω)
    /// churn: a rate change on the up-link of `w` moves the blocks of exactly
    /// the nodes in `subtree(w)`, and the partial gather refreshes each dirty
    /// node's block before refilling it.
    pub(crate) fn refresh_rho_node(&mut self, tree: &Tree, v: NodeId) {
        let off = self.rho_off[v];
        let n_l = self.n_l[v] as usize;
        self.rho[off] = 0.0;
        let mut acc = 0.0;
        let mut cur = Some(v);
        for l in 1..n_l {
            let u = cur.expect("n_l matches the root-path length");
            acc += tree.rho(u);
            self.rho[off + l] = acc;
            cur = tree.parent(u);
        }
    }

    /// Whether node `v`'s final-stage `Y` rows are elided from the arenas
    /// (compressed mode, ≤ 1 child). Elided values are served by
    /// [`GatherTables::y_value`].
    #[inline]
    pub fn y_elided(&self, v: NodeId) -> bool {
        self.compressed && self.split_len[v] == 0
    }

    /// Cells of node `v`'s block in the `y` arenas: its table size, or 0 when
    /// elided.
    #[inline]
    pub(crate) fn y_cells_of(&self, v: NodeId) -> usize {
        if self.y_elided(v) {
            0
        } else {
            self.n_l[v] as usize * self.n_i
        }
    }

    /// The table of switch `v`, as a borrowed view into the arena.
    ///
    /// In compressed mode an elided node's view carries **empty** `Y` slices;
    /// its `X`, ρ and split accessors stay valid, and `Y` reads must go through
    /// [`GatherTables::y_value`].
    pub fn node(&self, v: NodeId) -> NodeTableView<'_> {
        let n_l = self.n_l[v] as usize;
        let cells = n_l * self.n_i;
        let off = self.cell_off[v];
        let y_off = self.y_off[v];
        let y_cells = self.y_cells_of(v);
        NodeTableView {
            n_l,
            n_i: self.n_i,
            x: &self.x[off..off + cells],
            y_blue: &self.y_blue[y_off..y_off + y_cells],
            y_red: &self.y_red[y_off..y_off + y_cells],
            rho: &self.rho[self.rho_off[v]..self.rho_off[v] + n_l],
            splits: &self.splits[self.split_off[v]..self.split_off[v] + self.split_len[v]],
        }
    }

    /// Final-stage `Y_v(ℓ, i, color)`, whether stored or elided.
    ///
    /// For an elided node (compressed mode, ≤ 1 child) the value is recomputed
    /// from the same inputs with the same f64 expressions the gather pass uses —
    /// the leaf base case, or the first-child fold against the child's stored
    /// `X` table — so the result is **bit-identical** to what a full-mode arena
    /// would hold. `tree` must be the tree the tables were gathered for.
    pub fn y_value(&self, tree: &Tree, v: NodeId, l: usize, i: usize, color: Color) -> f64 {
        if !self.y_elided(v) {
            return self.node(v).y(l, i, color);
        }
        let rho = self.rho[self.rho_off[v] + l];
        let load = tree.load(v) as f64;
        let children = tree.children(v);
        match (color, children.first()) {
            // Leaf base case (fill_leaf).
            (Color::Red, None) => rho * load,
            (Color::Blue, None) => {
                if tree.available(v) && i >= 1 {
                    rho
                } else {
                    INF
                }
            }
            // Single child: Y = Y^1, the first-child fold (no split recorded).
            (Color::Red, Some(&c)) => self.x(c, l + 1, i) + rho * load,
            (Color::Blue, Some(&c)) => {
                if tree.available(v) && i >= 1 {
                    self.x(c, 1, i - 1) + rho
                } else {
                    INF
                }
            }
        }
    }

    /// Shorthand for `X_v(ℓ, i)`.
    pub fn x(&self, v: NodeId, l: usize, i: usize) -> f64 {
        self.node(v).x(l, i)
    }

    /// Shorthand for the final-stage `Y_v(ℓ, i, color)`.
    pub fn y(&self, v: NodeId, l: usize, i: usize, color: Color) -> f64 {
        self.node(v).y(l, i, color)
    }

    /// The optimal utilization achievable with **exactly** the given number of blue
    /// nodes: `X_r(1, i)` (Eq. 6 of the paper, the destination's view `X_d(0, i)`).
    pub fn optimum_with_exactly(&self, i: usize) -> f64 {
        self.x(soar_topology::ROOT, 1, i)
    }

    /// The optimal utilization achievable with **at most** `k` blue nodes, together with
    /// the smallest number of blue nodes attaining it.
    pub fn optimum(&self) -> (usize, f64) {
        let mut best_i = 0;
        let mut best = self.optimum_with_exactly(0);
        for i in 1..=self.k {
            let value = self.optimum_with_exactly(i);
            if value < best - 1e-12 {
                best = value;
                best_i = i;
            }
        }
        (best_i, best)
    }

    /// Number of switches covered by the tables.
    pub fn n_switches(&self) -> usize {
        self.n_l.len()
    }

    /// Number of `X(ℓ, i)` cells of node `v`'s table — what one refill of the
    /// node writes (the unit of the incremental-update work measure).
    pub(crate) fn node_cells(&self, v: NodeId) -> usize {
        self.n_l[v] as usize * self.n_i
    }

    /// Number of rows (`ℓ` values) of node `v`'s table: `D(v) + 2` under the
    /// layout this arena was last reset for.
    pub(crate) fn node_rows(&self, v: NodeId) -> usize {
        self.n_l[v] as usize
    }

    /// Number of tree levels the current layout describes.
    pub(crate) fn n_levels(&self) -> usize {
        self.level_ranges.len()
    }

    /// Total number of `X(ℓ, i)` cells across all per-switch tables — the work
    /// measure behind the `O(n · h(T) · k²)` bound, reported by
    /// [`crate::api::DpStats`].
    pub fn table_cells(&self) -> usize {
        self.x.len()
    }

    /// Total heap footprint of the arenas, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.x.len() + self.y_blue.len() + self.y_red.len() + self.rho.len()) * 8
            + self.splits.len() * 4
    }

    /// Total *reserved* heap footprint of the arenas (capacity, not live cells),
    /// in bytes — what a workspace actually holds on to between gathers. Feeds
    /// the shrink-on-idle policy of
    /// [`SolverWorkspace`](crate::workspace::SolverWorkspace).
    pub(crate) fn capacity_bytes(&self) -> usize {
        (self.x.capacity() + self.y_blue.capacity() + self.y_red.capacity() + self.rho.capacity())
            * 8
            + self.splits.capacity() * 4
    }

    /// Whether this layout elides ≤1-child nodes' `Y` rows.
    pub fn is_compressed(&self) -> bool {
        self.compressed
    }

    /// Releases arena capacity beyond the current layout (shrink-by-truncate):
    /// every backing vector keeps its live prefix and drops the reserved tail.
    /// Unlike a full clear this keeps the workspace warm for the *current*
    /// shape — only a later, larger shape pays a growth again. Returns the
    /// number of buffers that actually reallocated (counted as alloc events by
    /// the workspace so shrinks stay visible in [`crate::api::DpStats`]).
    pub(crate) fn shrink_to_live(&mut self) -> usize {
        let mut shrunk = 0;
        macro_rules! trim {
            ($field:expr) => {
                if $field.capacity() > $field.len() {
                    $field.shrink_to_fit();
                    shrunk += 1;
                }
            };
        }
        trim!(self.x);
        trim!(self.y_blue);
        trim!(self.y_red);
        trim!(self.rho);
        trim!(self.splits);
        trim!(self.n_l);
        trim!(self.cell_off);
        trim!(self.y_off);
        trim!(self.rho_off);
        trim!(self.split_off);
        trim!(self.split_len);
        trim!(self.level_nodes);
        trim!(self.level_ranges);
        trim!(self.level_cell_end);
        trim!(self.level_y_end);
        trim!(self.level_split_end);
        shrunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    #[test]
    fn node_table_indexing_round_trips() {
        let mut t = NodeTable::new(4, 3, 2, vec![0.0, 1.0, 2.0, 3.0]);
        t.set_x(2, 1, 7.5);
        assert_eq!(t.x(2, 1), 7.5);
        t.set_y(3, 2, Color::Blue, 1.25);
        t.set_y(3, 2, Color::Red, 2.5);
        assert_eq!(t.y(3, 2, Color::Blue), 1.25);
        assert_eq!(t.y(3, 2, Color::Red), 2.5);
        t.set_split(2, 1, 2, Color::Red, 9);
        assert_eq!(t.split(2, 1, 2, Color::Red), 9);
        assert_eq!(t.split(2, 1, 2, Color::Blue), 0);
        assert_eq!(t.rho_up(2), 2.0);
        assert!(t.memory_bytes() > 0);
        assert_eq!(t.n_split_children(), 1);
    }

    #[test]
    fn gather_tables_shape_follows_tree() {
        let tree = builders::complete_binary_tree(7);
        let tables = GatherTables::new(&tree, 2);
        assert_eq!(tables.n_switches(), 7);
        // Root: D = 0 → 2 rows; leaves: D = 2 → 4 rows.
        assert_eq!(tables.node(0).n_l, 2);
        assert_eq!(tables.node(3).n_l, 4);
        assert_eq!(tables.node(0).n_i, 3);
        // Binary internal nodes record one split block (for child m = 2).
        assert_eq!(tables.node(0).n_split_children(), 1);
        assert_eq!(tables.node(3).n_split_children(), 0);
        assert!(tables.memory_bytes() > 0);
        // Total cells: Σ (D(v) + 2)(k + 1) = (2 + 2·3 + 4·4) · 3.
        assert_eq!(tables.table_cells(), (2 + 2 * 3 + 4 * 4) * 3);
    }

    #[test]
    fn arena_layout_groups_nodes_by_level() {
        let tree = builders::complete_binary_tree(7);
        let tables = GatherTables::new(&tree, 1);
        // Levels are contiguous and shallowest-first.
        assert_eq!(tables.level_nodes, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(tables.level_ranges, vec![(0, 1), (1, 3), (3, 7)]);
        // The level boundary sits exactly after the root's block.
        assert_eq!(tables.level_cell_end[0], 2 * 2);
        // Offsets are strictly increasing in arena order.
        for pair in tables.level_nodes.windows(2) {
            assert!(tables.cell_off[pair[0]] < tables.cell_off[pair[1]]);
        }
    }

    #[test]
    fn reset_reuses_storage_for_the_same_shape() {
        let tree = builders::complete_binary_tree(31);
        let mut tables = GatherTables::new(&tree, 4);
        // Warm: same tree and budget → zero growth.
        assert_eq!(tables.reset(&tree, 4, false), 0);
        // Smaller budget shrinks in place.
        assert_eq!(tables.reset(&tree, 2, false), 0);
        assert_eq!(tables.k, 2);
        // Growing again within the original capacity is also allocation-free.
        assert_eq!(tables.reset(&tree, 4, false), 0);
        // A genuinely larger shape grows.
        let big = builders::complete_binary_tree(63);
        assert!(tables.reset(&big, 4, false) > 0);
    }

    #[test]
    fn rho_blocks_match_tree_path_rho() {
        let mut tree = builders::complete_binary_tree(7);
        tree.apply_rates(&soar_topology::rates::RateScheme::paper_exponential());
        let tables = GatherTables::new(&tree, 1);
        for v in tree.node_ids() {
            let expected = tree.path_rho(v);
            let view = tables.node(v);
            assert_eq!(view.n_l, expected.len());
            for (l, &want) in expected.iter().enumerate() {
                assert_eq!(view.rho_up(l), want, "node {v}, l = {l}");
            }
        }
    }
}
