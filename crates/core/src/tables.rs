//! Dynamic-programming tables produced by SOAR-Gather and consumed by SOAR-Color.
//!
//! For every switch `v` the gather phase materialises the parameterized potential
//! function of the paper (Sec. 6.1):
//!
//! * `X_v(ℓ, i)` — the minimum potential `π_v(ℓ, U)` over all sets `U` of `i` blue
//!   nodes inside the subtree `T_v`, where `ℓ` is the hop distance from `v` to its
//!   closest blue ancestor (or to the destination `d`);
//! * `Y_v^{C(v)}(ℓ, i, B)` / `Y_v^{C(v)}(ℓ, i, R)` — the same minimum conditioned on
//!   the color of `v` itself (blue / red), i.e. the final stage of the per-child
//!   prefix recursion (`X_v = min(Y_B, Y_R)`);
//! * the **split decisions**: for every child index `m ≥ 2` and every `(ℓ, i, color)`,
//!   how many of the `i` blue nodes the optimal partition hands to the subtree of the
//!   `m`-th child (the `arg min` of the paper's `mCost`, recorded so that SOAR-Color
//!   can trace the optimum without recomputing it).
//!
//! The parameter ranges are `ℓ ∈ {0, ..., D(v) + 1}` (up to the distance from `v` to
//! the destination) and `i ∈ {0, ..., k}`.

use soar_topology::{NodeId, Tree};

/// Sentinel for an infeasible configuration (e.g. coloring an unavailable switch blue).
pub const INF: f64 = f64::INFINITY;

/// Identifies the color a potential value is conditioned on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// Aggregating switch (`v ∈ U`).
    Blue,
    /// Forwarding switch (`v ∉ U`).
    Red,
}

/// The per-switch DP table.
#[derive(Debug, Clone)]
pub struct NodeTable {
    /// Number of distinct `ℓ` values: `D(v) + 2` (i.e. `0 ..= dist_to_dest(v)`).
    pub n_l: usize,
    /// Number of distinct `i` values: `k + 1`.
    pub n_i: usize,
    /// `X_v(ℓ, i)`, row-major in `ℓ`.
    pub x: Vec<f64>,
    /// Final-stage `Y_v(ℓ, i, B)`.
    pub y_blue: Vec<f64>,
    /// Final-stage `Y_v(ℓ, i, R)`.
    pub y_red: Vec<f64>,
    /// `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1` (prefix sums of ρ up the tree).
    pub path_rho: Vec<f64>,
    /// Split decisions for children `c_2 ..= c_{C(v)}`: `splits[m - 2]` is a flat
    /// `(ℓ, i, color)` array holding the number of blue nodes granted to child `c_m`.
    pub splits: Vec<Vec<u32>>,
}

impl NodeTable {
    /// Creates an empty (all-zero / all-infinite) table for a node.
    pub fn new(n_l: usize, n_i: usize, n_children: usize, path_rho: Vec<f64>) -> Self {
        let cells = n_l * n_i;
        NodeTable {
            n_l,
            n_i,
            x: vec![0.0; cells],
            y_blue: vec![INF; cells],
            y_red: vec![INF; cells],
            path_rho,
            splits: vec![vec![0; cells * 2]; n_children.saturating_sub(1)],
        }
    }

    #[inline]
    fn idx(&self, l: usize, i: usize) -> usize {
        debug_assert!(l < self.n_l, "l = {l} out of range {}", self.n_l);
        debug_assert!(i < self.n_i, "i = {i} out of range {}", self.n_i);
        l * self.n_i + i
    }

    /// `X_v(ℓ, i)`.
    #[inline]
    pub fn x(&self, l: usize, i: usize) -> f64 {
        self.x[self.idx(l, i)]
    }

    /// Sets `X_v(ℓ, i)`.
    #[inline]
    pub fn set_x(&mut self, l: usize, i: usize, value: f64) {
        let idx = self.idx(l, i);
        self.x[idx] = value;
    }

    /// Final-stage `Y_v(ℓ, i, color)`.
    #[inline]
    pub fn y(&self, l: usize, i: usize, color: Color) -> f64 {
        let idx = self.idx(l, i);
        match color {
            Color::Blue => self.y_blue[idx],
            Color::Red => self.y_red[idx],
        }
    }

    /// Sets the final-stage `Y_v(ℓ, i, color)`.
    #[inline]
    pub fn set_y(&mut self, l: usize, i: usize, color: Color, value: f64) {
        let idx = self.idx(l, i);
        match color {
            Color::Blue => self.y_blue[idx] = value,
            Color::Red => self.y_red[idx] = value,
        }
    }

    /// The recorded split for child `c_m` (`m ≥ 2`), i.e. how many blue nodes the
    /// optimal partition of `Y_v^m(ℓ, i, color)` grants to the subtree of `c_m`.
    #[inline]
    pub fn split(&self, m: usize, l: usize, i: usize, color: Color) -> u32 {
        debug_assert!(m >= 2, "splits are only recorded for children m >= 2");
        let idx = self.idx(l, i) * 2 + if matches!(color, Color::Blue) { 0 } else { 1 };
        self.splits[m - 2][idx]
    }

    /// Records the split for child `c_m` (`m ≥ 2`).
    #[inline]
    pub fn set_split(&mut self, m: usize, l: usize, i: usize, color: Color, j: u32) {
        debug_assert!(m >= 2);
        let idx = self.idx(l, i) * 2 + if matches!(color, Color::Blue) { 0 } else { 1 };
        self.splits[m - 2][idx] = j;
    }

    /// `ρ(v, Aᵉ_v)` — the summed transmission time of the first `ℓ` up-links above `v`.
    #[inline]
    pub fn rho_up(&self, l: usize) -> f64 {
        self.path_rho[l]
    }

    /// Approximate heap footprint of this table in bytes (used by diagnostics).
    pub fn memory_bytes(&self) -> usize {
        (self.x.len() + self.y_blue.len() + self.y_red.len() + self.path_rho.len()) * 8
            + self.splits.iter().map(|s| s.len() * 4).sum::<usize>()
    }
}

/// All per-switch tables produced by one run of SOAR-Gather.
#[derive(Debug, Clone)]
pub struct GatherTables {
    /// The budget the tables were computed for.
    pub k: usize,
    tables: Vec<NodeTable>,
}

impl GatherTables {
    pub(crate) fn new(tree: &Tree, k: usize) -> Self {
        let tables = tree
            .node_ids()
            .map(|v| {
                NodeTable::new(
                    tree.dist_to_dest(v) + 1,
                    k + 1,
                    tree.n_children(v),
                    tree.path_rho(v),
                )
            })
            .collect();
        GatherTables { k, tables }
    }

    /// The table of switch `v`.
    pub fn node(&self, v: NodeId) -> &NodeTable {
        &self.tables[v]
    }

    /// Replaces the table of switch `v` (used by the gather pass, which computes each
    /// table via [`crate::node_dp::compute_node_table`]).
    pub(crate) fn replace_node(&mut self, v: NodeId, table: NodeTable) {
        self.tables[v] = table;
    }

    /// Shorthand for `X_v(ℓ, i)`.
    pub fn x(&self, v: NodeId, l: usize, i: usize) -> f64 {
        self.tables[v].x(l, i)
    }

    /// Shorthand for the final-stage `Y_v(ℓ, i, color)`.
    pub fn y(&self, v: NodeId, l: usize, i: usize, color: Color) -> f64 {
        self.tables[v].y(l, i, color)
    }

    /// The optimal utilization achievable with **exactly** the given number of blue
    /// nodes: `X_r(1, i)` (Eq. 6 of the paper, the destination's view `X_d(0, i)`).
    pub fn optimum_with_exactly(&self, i: usize) -> f64 {
        self.tables[soar_topology::ROOT].x(1, i)
    }

    /// The optimal utilization achievable with **at most** `k` blue nodes, together with
    /// the smallest number of blue nodes attaining it.
    pub fn optimum(&self) -> (usize, f64) {
        let mut best_i = 0;
        let mut best = self.optimum_with_exactly(0);
        for i in 1..=self.k {
            let value = self.optimum_with_exactly(i);
            if value < best - 1e-12 {
                best = value;
                best_i = i;
            }
        }
        (best_i, best)
    }

    /// Number of switches covered by the tables.
    pub fn n_switches(&self) -> usize {
        self.tables.len()
    }

    /// Total number of `X(ℓ, i)` cells across all per-switch tables — the work
    /// measure behind the `O(n · h(T) · k²)` bound, reported by
    /// [`crate::api::DpStats`].
    pub fn table_cells(&self) -> usize {
        self.tables.iter().map(|t| t.x.len()).sum()
    }

    /// Total heap footprint of all tables, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    #[test]
    fn node_table_indexing_round_trips() {
        let mut t = NodeTable::new(4, 3, 2, vec![0.0, 1.0, 2.0, 3.0]);
        t.set_x(2, 1, 7.5);
        assert_eq!(t.x(2, 1), 7.5);
        t.set_y(3, 2, Color::Blue, 1.25);
        t.set_y(3, 2, Color::Red, 2.5);
        assert_eq!(t.y(3, 2, Color::Blue), 1.25);
        assert_eq!(t.y(3, 2, Color::Red), 2.5);
        t.set_split(2, 1, 2, Color::Red, 9);
        assert_eq!(t.split(2, 1, 2, Color::Red), 9);
        assert_eq!(t.split(2, 1, 2, Color::Blue), 0);
        assert_eq!(t.rho_up(2), 2.0);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn gather_tables_shape_follows_tree() {
        let tree = builders::complete_binary_tree(7);
        let tables = GatherTables::new(&tree, 2);
        assert_eq!(tables.n_switches(), 7);
        // Root: D = 0 → 2 rows; leaves: D = 2 → 4 rows.
        assert_eq!(tables.node(0).n_l, 2);
        assert_eq!(tables.node(3).n_l, 4);
        assert_eq!(tables.node(0).n_i, 3);
        // Binary internal nodes record one split vector (for child m = 2).
        assert_eq!(tables.node(0).splits.len(), 1);
        assert_eq!(tables.node(3).splits.len(), 0);
        assert!(tables.memory_bytes() > 0);
    }
}
