//! The per-switch computation of SOAR-Gather, factored out of the tree traversal.
//!
//! A switch only needs *local* information to fill its DP table:
//!
//! * the prefix sums `ρ(v, Aᵉ_v)` of transmission times up its root path,
//! * its own load `L(v)` and availability (`v ∈ Λ`),
//! * the budget `k`,
//! * and the `X` tables reported by its children.
//!
//! This is exactly the information a switch has in the *distributed* rendition of
//! SOAR-Gather (Sec. 4.2), where children push their `X` tables upwards; the
//! `soar-dataplane` crate drives this same function from message-passing switch actors,
//! while [`crate::gather`] drives it from a centralized post-order traversal. Keeping a
//! single implementation guarantees the two agree.

use crate::tables::{Color, NodeTable, INF};

/// Computes the full DP table of one switch from its children's `X` tables.
///
/// * `path_rho[ℓ]` must hold `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1`.
/// * `children_x[m]` is the flat `X` table of the `m`-th child (row-major in `ℓ`, with
///   `k + 1` columns and at least `D(v) + 3` rows — i.e. the child's own table).
///
/// The returned table contains `X_v`, the final-stage `Y_v(·, ·, B/R)` and the recorded
/// split decisions for children `m ≥ 2`.
pub fn compute_node_table(
    path_rho: &[f64],
    load: u64,
    available: bool,
    k: usize,
    children_x: &[Vec<f64>],
) -> NodeTable {
    let n_l = path_rho.len();
    let mut table = NodeTable::new(n_l, k + 1, children_x.len(), path_rho.to_vec());
    if children_x.is_empty() {
        fill_leaf(&mut table, load, available, k);
    } else {
        fill_internal(&mut table, load, available, k, children_x);
    }
    table
}

/// Base case (Alg. 3, lines 1-9): a leaf aggregates (blue) for `1 · ρ` or forwards its
/// own workers (red) for `L(v) · ρ`.
fn fill_leaf(table: &mut NodeTable, load: u64, available: bool, k: usize) {
    let load = load as f64;
    for l in 0..table.n_l {
        let rho = table.rho_up(l);
        let red = rho * load;
        let blue = if available { rho } else { INF };
        table.set_y(l, 0, Color::Red, red);
        table.set_y(l, 0, Color::Blue, INF);
        table.set_x(l, 0, red);
        for i in 1..=k {
            table.set_y(l, i, Color::Red, red);
            table.set_y(l, i, Color::Blue, blue);
            table.set_x(l, i, red.min(blue));
        }
    }
}

/// Recursive case (Alg. 3, lines 10-29): fold the children in one at a time through the
/// prefix recursion `Y^m`, recording the arg-min splits (`mCost`) along the way.
fn fill_internal(
    table: &mut NodeTable,
    load: u64,
    available: bool,
    k: usize,
    children_x: &[Vec<f64>],
) {
    let n_l = table.n_l;
    let load = load as f64;
    let n_children = children_x.len();
    let child_x = |m_index: usize, l: usize, i: usize| children_x[m_index][l * (k + 1) + i];

    let cells = n_l * (k + 1);
    let mut prev_blue = vec![INF; cells];
    let mut prev_red = vec![INF; cells];
    let mut cur_blue = vec![INF; cells];
    let mut cur_red = vec![INF; cells];
    let idx = |l: usize, i: usize| l * (k + 1) + i;

    for m_index in 0..n_children {
        let m = m_index + 1; // the paper's 1-based child index
        if m == 1 {
            for l in 0..n_l {
                let rho = table.rho_up(l);
                for i in 0..=k {
                    // Blue: v consumes one blue node; c_1 is looked up at distance 1
                    // with the remaining i - 1 nodes.
                    let blue = if available && i >= 1 {
                        child_x(m_index, 1, i - 1) + rho
                    } else {
                        INF
                    };
                    // Red: c_1 is looked up at distance ℓ + 1; v's own workers travel ℓ
                    // links to the barrier.
                    let red = child_x(m_index, l + 1, i) + rho * load;
                    cur_blue[idx(l, i)] = blue;
                    cur_red[idx(l, i)] = red;
                }
            }
        } else {
            for l in 0..n_l {
                for i in 0..=k {
                    // mCost for color B: hand j blue nodes to c_m, keep i - j ≥ 1 in the
                    // prefix (one of them is v itself).
                    let mut best_blue = INF;
                    let mut best_blue_j = 0u32;
                    if available && i >= 1 {
                        for j in 0..i {
                            let value = prev_blue[idx(l, i - j)] + child_x(m_index, 1, j);
                            if value < best_blue {
                                best_blue = value;
                                best_blue_j = j as u32;
                            }
                        }
                    }
                    // mCost for color R.
                    let mut best_red = INF;
                    let mut best_red_j = 0u32;
                    for j in 0..=i {
                        let value = prev_red[idx(l, i - j)] + child_x(m_index, l + 1, j);
                        if value < best_red {
                            best_red = value;
                            best_red_j = j as u32;
                        }
                    }
                    cur_blue[idx(l, i)] = best_blue;
                    cur_red[idx(l, i)] = best_red;
                    table.set_split(m, l, i, Color::Blue, best_blue_j);
                    table.set_split(m, l, i, Color::Red, best_red_j);
                }
            }
        }
        std::mem::swap(&mut prev_blue, &mut cur_blue);
        std::mem::swap(&mut prev_red, &mut cur_red);
        if m < n_children {
            for cell in cur_blue.iter_mut() {
                *cell = INF;
            }
            for cell in cur_red.iter_mut() {
                *cell = INF;
            }
        }
    }

    for l in 0..n_l {
        for i in 0..=k {
            let blue = prev_blue[idx(l, i)];
            let red = prev_red[idx(l, i)];
            table.set_y(l, i, Color::Blue, blue);
            table.set_y(l, i, Color::Red, red);
            table.set_x(l, i, blue.min(red));
        }
    }
}

/// Given a switch's own table and its actual distance `ℓ*` to the nearest barrier plus
/// the number of blue nodes `i` it must distribute, decides the switch's color exactly
/// as SOAR-Color does (Alg. 4, line 6; leaves are handled by the caller).
pub fn decide_color(table: &NodeTable, l: usize, i: usize) -> Color {
    if table.y(l, i, Color::Blue) < table.y(l, i, Color::Red) {
        Color::Blue
    } else {
        Color::Red
    }
}

/// Computes how many blue nodes each child receives when `v` (whose table is given) has
/// `i` blue nodes to distribute, sits at distance `ℓ*` from its barrier, and takes the
/// given color. Returns one entry per child, in child order (Alg. 4, lines 9-16).
pub fn child_budgets(
    table: &NodeTable,
    n_children: usize,
    l: usize,
    i: usize,
    color: Color,
) -> Vec<usize> {
    let mut budgets = vec![0usize; n_children];
    let mut remaining = i;
    for m in (2..=n_children).rev() {
        let j = table.split(m, l, remaining, color) as usize;
        budgets[m - 1] = j;
        remaining -= j;
    }
    if n_children >= 1 {
        budgets[0] = match color {
            Color::Blue => remaining.saturating_sub(1),
            Color::Red => remaining,
        };
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_table_values() {
        let table = compute_node_table(&[0.0, 1.0, 2.0], 3, true, 2, &[]);
        assert_eq!(table.x(1, 0), 3.0);
        assert_eq!(table.x(1, 1), 1.0);
        assert_eq!(table.x(2, 0), 6.0);
        assert_eq!(table.x(2, 2), 2.0);
        assert_eq!(table.y(2, 1, Color::Red), 6.0);
        assert_eq!(table.y(2, 1, Color::Blue), 2.0);

        let unavailable = compute_node_table(&[0.0, 1.0], 3, false, 2, &[]);
        assert_eq!(unavailable.x(1, 2), 3.0);
        assert_eq!(unavailable.y(1, 2, Color::Blue), INF);
    }

    #[test]
    fn internal_node_matches_manual_computation() {
        // Reproduce the left internal switch of Fig. 5 (children with loads 2 and 6,
        // unit rates): its children's X tables are X(ℓ, 0) = L·ℓ and X(ℓ, i ≥ 1) = ℓ.
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        assert_eq!(table.x(0, 0), 8.0);
        assert_eq!(table.x(0, 1), 3.0);
        assert_eq!(table.x(0, 2), 2.0);
        assert_eq!(table.x(1, 0), 16.0);
        assert_eq!(table.x(1, 1), 6.0);
        assert_eq!(table.x(2, 1), 9.0);
    }

    #[test]
    fn decide_color_and_child_budgets() {
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        // At ℓ = 1 with i = 1 the red configuration (child-2 blue) is cheaper than
        // being blue itself: X(1,1) = 6 comes from the red row.
        assert_eq!(decide_color(&table, 1, 1), Color::Red);
        let budgets = child_budgets(&table, 2, 1, 1, Color::Red);
        assert_eq!(budgets.iter().sum::<usize>(), 1);
        assert_eq!(
            budgets,
            vec![0, 1],
            "the heavy child receives the blue node"
        );

        // With i = 0 nothing is distributed.
        assert_eq!(child_budgets(&table, 2, 1, 0, Color::Red), vec![0, 0]);
    }
}
