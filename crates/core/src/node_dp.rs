//! The per-switch computation of SOAR-Gather, factored out of the tree traversal.
//!
//! A switch only needs *local* information to fill its DP table:
//!
//! * the prefix sums `ρ(v, Aᵉ_v)` of transmission times up its root path,
//! * its own load `L(v)` and availability (`v ∈ Λ`),
//! * the budget `k`,
//! * and the `X` tables reported by its children.
//!
//! This is exactly the information a switch has in the *distributed* rendition of
//! SOAR-Gather (Sec. 4.2), where children push their `X` tables upwards; the
//! `soar-dataplane` crate drives this same function from message-passing switch actors,
//! while [`crate::gather`] drives it from a centralized post-order traversal. Keeping a
//! single implementation guarantees the two agree.
//!
//! ## Hot-path shape
//!
//! The actual DP lives in [`fill_node`], which writes into caller-provided slices
//! ([`NodeTableMut`]) and reads children's `X` tables as borrowed slices — in the
//! centralized gather those are arena stripes, so **no per-node heap allocation**
//! happens at all once the [`DpScratch`] ping-pong buffers are warm. The `mCost`
//! inner loops are written against per-row subslices: the row bounds checks are
//! paid once per `(child, ℓ)` instead of once per `(child, ℓ, i, j)` lookup, and
//! the child's distance-1 row (the only row the blue recursion ever reads) is
//! hoisted out of the `ℓ` loop entirely.
//!
//! [`compute_node_table`] remains the allocating convenience wrapper used by the
//! dataplane's switch actors, which own their tables outright.

use crate::tables::{Color, DpTable, NodeTable, INF};

/// Reusable ping-pong buffers for the per-child prefix recursion (`Y^m`).
///
/// One scratch serves any number of consecutive [`fill_node`] calls; buffers only
/// grow (doubling), so a warm scratch performs no allocation. The buffers are
/// never cleared between nodes or children: every cell is overwritten before it is
/// read (the old INF refill between children was dead work — both buffers are
/// fully rewritten for every `(ℓ, i)` cell on the next child fold).
#[derive(Debug, Default)]
pub struct DpScratch {
    prev_blue: Vec<f64>,
    prev_red: Vec<f64>,
    cur_blue: Vec<f64>,
    cur_red: Vec<f64>,
}

impl DpScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Makes every buffer at least `cells` long. Returns the number of buffers
    /// that had to (re)allocate — 0 once warm.
    fn ensure(&mut self, cells: usize) -> usize {
        let mut grew = 0;
        for buf in [
            &mut self.prev_blue,
            &mut self.prev_red,
            &mut self.cur_blue,
            &mut self.cur_red,
        ] {
            if buf.len() < cells {
                if buf.capacity() < cells {
                    grew += 1;
                }
                buf.resize(cells.max(buf.capacity()), INF);
            }
        }
        grew
    }

    /// Current heap footprint of the scratch buffers, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.prev_blue.capacity()
            + self.prev_red.capacity()
            + self.cur_blue.capacity()
            + self.cur_red.capacity())
            * 8
    }
}

/// Mutable destination slices for one node's table, borrowed from the
/// [`GatherTables`](crate::tables::GatherTables) arena (or from an owned
/// [`NodeTable`]'s buffers). All slices are `n_l · n_i` cells, row-major in `ℓ`,
/// except `splits` which is `(C(v) - 1) · n_l · n_i · 2`.
pub struct NodeTableMut<'a> {
    /// `X_v` destination.
    pub x: &'a mut [f64],
    /// `Y_v(·, ·, B)` destination.
    pub y_blue: &'a mut [f64],
    /// `Y_v(·, ·, R)` destination.
    pub y_red: &'a mut [f64],
    /// Split-decision destination (empty for nodes with fewer than two children).
    pub splits: &'a mut [u32],
}

/// Fills one switch's DP table in place from its children's `X` tables.
///
/// * `path_rho[ℓ]` must hold `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1`; its length is
///   the number of rows `n_l`.
/// * `n_i` is `k + 1`.
/// * `children_x` yields each child's flat `X` table in child order (`n_l + 1`
///   rows of `n_i` columns — i.e. the child's own table); it must yield exactly
///   `n_children` items.
///
/// Returns the number of scratch buffers that had to grow (0 once warm).
#[allow(clippy::too_many_arguments)]
pub fn fill_node<'c>(
    out: NodeTableMut<'_>,
    path_rho: &[f64],
    load: u64,
    available: bool,
    n_i: usize,
    n_children: usize,
    children_x: impl Iterator<Item = &'c [f64]>,
    scratch: &mut DpScratch,
) -> usize {
    if n_children == 0 {
        fill_leaf(out, path_rho, load, available, n_i);
        0
    } else {
        fill_internal(
            out, path_rho, load, available, n_i, n_children, children_x, scratch,
        )
    }
}

/// Base case (Alg. 3, lines 1-9): a leaf aggregates (blue) for `1 · ρ` or forwards its
/// own workers (red) for `L(v) · ρ`.
fn fill_leaf(out: NodeTableMut<'_>, path_rho: &[f64], load: u64, available: bool, n_i: usize) {
    let load = load as f64;
    for (l, &rho) in path_rho.iter().enumerate() {
        let red = rho * load;
        let blue = if available { rho } else { INF };
        let row = l * n_i;
        let x_row = &mut out.x[row..row + n_i];
        let yb_row = &mut out.y_blue[row..row + n_i];
        let yr_row = &mut out.y_red[row..row + n_i];
        yr_row.fill(red);
        yb_row[0] = INF;
        yb_row[1..].fill(blue);
        x_row[0] = red;
        x_row[1..].fill(red.min(blue));
    }
}

/// Recursive case (Alg. 3, lines 10-29): fold the children in one at a time through the
/// prefix recursion `Y^m`, recording the arg-min splits (`mCost`) along the way.
#[allow(clippy::too_many_arguments)]
fn fill_internal<'c>(
    out: NodeTableMut<'_>,
    path_rho: &[f64],
    load: u64,
    available: bool,
    n_i: usize,
    n_children: usize,
    mut children_x: impl Iterator<Item = &'c [f64]>,
    scratch: &mut DpScratch,
) -> usize {
    let n_l = path_rho.len();
    let cells = n_l * n_i;
    let load = load as f64;
    let grew = scratch.ensure(cells);

    for m_index in 0..n_children {
        let cx = children_x
            .next()
            .expect("children_x yields one table per child");
        // The only row the blue recursion reads: the child at distance 1.
        // Hoisted out of the ℓ loop (and its bounds check out of the j loop).
        let d1_row = &cx[n_i..2 * n_i];
        if m_index == 0 {
            // First child: Y^1 is a direct lookup, no split to record.
            let cur_blue = &mut scratch.cur_blue[..cells];
            let cur_red = &mut scratch.cur_red[..cells];
            for (l, &rho) in path_rho.iter().enumerate() {
                let row = l * n_i;
                // Red: c_1 is looked up at distance ℓ + 1; v's own workers travel
                // ℓ links to the barrier.
                let child_row = &cx[row + n_i..row + 2 * n_i];
                let cb_row = &mut cur_blue[row..row + n_i];
                let cr_row = &mut cur_red[row..row + n_i];
                let red_base = rho * load;
                for (cr, &c) in cr_row.iter_mut().zip(child_row) {
                    *cr = c + red_base;
                }
                // Blue: v consumes one blue node; c_1 is looked up at distance 1
                // with the remaining i - 1 nodes.
                cb_row[0] = INF;
                if available {
                    for (cb, &c) in cb_row[1..].iter_mut().zip(d1_row) {
                        *cb = c + rho;
                    }
                } else {
                    cb_row[1..].fill(INF);
                }
            }
        } else {
            let m = m_index + 1; // the paper's 1-based child index
            let prev_blue = &scratch.prev_blue[..cells];
            let prev_red = &scratch.prev_red[..cells];
            let cur_blue = &mut scratch.cur_blue[..cells];
            let cur_red = &mut scratch.cur_red[..cells];
            let split_block = &mut out.splits[(m - 2) * cells * 2..(m - 1) * cells * 2];
            for l in 0..n_l {
                let row = l * n_i;
                let child_row = &cx[row + n_i..row + 2 * n_i];
                let pb_row = &prev_blue[row..row + n_i];
                let pr_row = &prev_red[row..row + n_i];
                let cb_row = &mut cur_blue[row..row + n_i];
                let cr_row = &mut cur_red[row..row + n_i];
                let split_row = &mut split_block[row * 2..(row + n_i) * 2];
                for i in 0..n_i {
                    // mCost for color B: hand j blue nodes to c_m, keep i - j ≥ 1
                    // in the prefix (one of them is v itself).
                    let mut best_blue = INF;
                    let mut best_blue_j = 0u32;
                    if available && i >= 1 {
                        for j in 0..i {
                            let value = pb_row[i - j] + d1_row[j];
                            if value < best_blue {
                                best_blue = value;
                                best_blue_j = j as u32;
                            }
                        }
                    }
                    // mCost for color R.
                    let mut best_red = INF;
                    let mut best_red_j = 0u32;
                    for j in 0..=i {
                        let value = pr_row[i - j] + child_row[j];
                        if value < best_red {
                            best_red = value;
                            best_red_j = j as u32;
                        }
                    }
                    cb_row[i] = best_blue;
                    cr_row[i] = best_red;
                    split_row[i * 2] = best_blue_j;
                    split_row[i * 2 + 1] = best_red_j;
                }
            }
        }
        std::mem::swap(&mut scratch.prev_blue, &mut scratch.cur_blue);
        std::mem::swap(&mut scratch.prev_red, &mut scratch.cur_red);
    }

    // Final stage: Y_v = Y^{C(v)}, X_v = min(Y_B, Y_R).
    let prev_blue = &scratch.prev_blue[..cells];
    let prev_red = &scratch.prev_red[..cells];
    for i in 0..cells {
        let blue = prev_blue[i];
        let red = prev_red[i];
        out.y_blue[i] = blue;
        out.y_red[i] = red;
        out.x[i] = blue.min(red);
    }
    grew
}

/// Computes the full DP table of one switch from its children's `X` tables, as an
/// owned [`NodeTable`].
///
/// * `path_rho[ℓ]` must hold `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1`.
/// * `children_x[m]` is the flat `X` table of the `m`-th child (row-major in `ℓ`, with
///   `k + 1` columns and at least `D(v) + 3` rows — i.e. the child's own table).
///
/// The returned table contains `X_v`, the final-stage `Y_v(·, ·, B/R)` and the recorded
/// split decisions for children `m ≥ 2`. This is the entry point of the
/// *distributed* rendition (`soar-dataplane`), where every switch owns its table;
/// the centralized gather instead fills arena slices via [`fill_node`] and never
/// allocates per node.
pub fn compute_node_table(
    path_rho: &[f64],
    load: u64,
    available: bool,
    k: usize,
    children_x: &[Vec<f64>],
) -> NodeTable {
    let n_l = path_rho.len();
    let mut table = NodeTable::new(n_l, k + 1, children_x.len(), path_rho.to_vec());
    let mut scratch = DpScratch::new();
    fill_node(
        NodeTableMut {
            x: &mut table.x,
            y_blue: &mut table.y_blue,
            y_red: &mut table.y_red,
            splits: &mut table.splits,
        },
        path_rho,
        load,
        available,
        k + 1,
        children_x.len(),
        children_x.iter().map(|v| v.as_slice()),
        &mut scratch,
    );
    table
}

/// Given a switch's own table and its actual distance `ℓ*` to the nearest barrier plus
/// the number of blue nodes `i` it must distribute, decides the switch's color exactly
/// as SOAR-Color does (Alg. 4, line 6; leaves are handled by the caller).
///
/// Generic over [`DpTable`] so it serves both the dataplane's owned tables and the
/// arena-backed views of the centralized solver.
pub fn decide_color<T: DpTable + ?Sized>(table: &T, l: usize, i: usize) -> Color {
    if table.y(l, i, Color::Blue) < table.y(l, i, Color::Red) {
        Color::Blue
    } else {
        Color::Red
    }
}

/// Computes how many blue nodes each child receives when `v` (whose table is given) has
/// `i` blue nodes to distribute, sits at distance `ℓ*` from its barrier, and takes the
/// given color. Returns one entry per child, in child order (Alg. 4, lines 9-16).
pub fn child_budgets<T: DpTable + ?Sized>(
    table: &T,
    n_children: usize,
    l: usize,
    i: usize,
    color: Color,
) -> Vec<usize> {
    let mut budgets = vec![0usize; n_children];
    let mut remaining = i;
    for m in (2..=n_children).rev() {
        let j = table.split(m, l, remaining, color) as usize;
        budgets[m - 1] = j;
        remaining -= j;
    }
    if n_children >= 1 {
        budgets[0] = match color {
            Color::Blue => remaining.saturating_sub(1),
            Color::Red => remaining,
        };
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_table_values() {
        let table = compute_node_table(&[0.0, 1.0, 2.0], 3, true, 2, &[]);
        assert_eq!(table.x(1, 0), 3.0);
        assert_eq!(table.x(1, 1), 1.0);
        assert_eq!(table.x(2, 0), 6.0);
        assert_eq!(table.x(2, 2), 2.0);
        assert_eq!(table.y(2, 1, Color::Red), 6.0);
        assert_eq!(table.y(2, 1, Color::Blue), 2.0);

        let unavailable = compute_node_table(&[0.0, 1.0], 3, false, 2, &[]);
        assert_eq!(unavailable.x(1, 2), 3.0);
        assert_eq!(unavailable.y(1, 2, Color::Blue), INF);
    }

    #[test]
    fn internal_node_matches_manual_computation() {
        // Reproduce the left internal switch of Fig. 5 (children with loads 2 and 6,
        // unit rates): its children's X tables are X(ℓ, 0) = L·ℓ and X(ℓ, i ≥ 1) = ℓ.
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        assert_eq!(table.x(0, 0), 8.0);
        assert_eq!(table.x(0, 1), 3.0);
        assert_eq!(table.x(0, 2), 2.0);
        assert_eq!(table.x(1, 0), 16.0);
        assert_eq!(table.x(1, 1), 6.0);
        assert_eq!(table.x(2, 1), 9.0);
    }

    #[test]
    fn decide_color_and_child_budgets() {
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        // At ℓ = 1 with i = 1 the red configuration (child-2 blue) is cheaper than
        // being blue itself: X(1,1) = 6 comes from the red row.
        assert_eq!(decide_color(&table, 1, 1), Color::Red);
        let budgets = child_budgets(&table, 2, 1, 1, Color::Red);
        assert_eq!(budgets.iter().sum::<usize>(), 1);
        assert_eq!(
            budgets,
            vec![0, 1],
            "the heavy child receives the blue node"
        );

        // With i = 0 nothing is distributed.
        assert_eq!(child_budgets(&table, 2, 1, 0, Color::Red), vec![0, 0]);
    }

    #[test]
    fn scratch_reuse_is_allocation_free_and_result_invariant() {
        let k = 3;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 5 * (k + 1)];
            for l in 0..5 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let children: Vec<Vec<f64>> = vec![child(2.0), child(6.0), child(5.0)];
        let child_slices: Vec<&[f64]> = children.iter().map(|v| v.as_slice()).collect();
        let reference = compute_node_table(&[0.0, 1.0, 2.0, 3.0], 1, true, k, &children);

        let mut scratch = DpScratch::new();
        let n_l = 4;
        let n_i = k + 1;
        let cells = n_l * n_i;
        let mut runs = Vec::new();
        for round in 0..3 {
            let mut x = vec![0.0; cells];
            let mut yb = vec![0.0; cells];
            let mut yr = vec![0.0; cells];
            let mut splits = vec![0u32; 2 * cells * 2];
            let grew = fill_node(
                NodeTableMut {
                    x: &mut x,
                    y_blue: &mut yb,
                    y_red: &mut yr,
                    splits: &mut splits,
                },
                &[0.0, 1.0, 2.0, 3.0],
                1,
                true,
                n_i,
                3,
                child_slices.iter().copied(),
                &mut scratch,
            );
            if round == 0 {
                assert!(grew > 0, "cold scratch must grow once");
            } else {
                assert_eq!(grew, 0, "warm scratch must not allocate");
            }
            runs.push((x, yb, yr, splits));
        }
        // Every reuse round is bit-identical to the first and to the owned wrapper.
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        assert_eq!(runs[0].0, reference.x);
        assert_eq!(runs[0].1, reference.y_blue);
        assert_eq!(runs[0].2, reference.y_red);
        assert_eq!(runs[0].3, reference.splits);
        assert!(scratch.memory_bytes() >= 4 * cells * 8);
    }
}
