//! The per-switch computation of SOAR-Gather, factored out of the tree traversal.
//!
//! A switch only needs *local* information to fill its DP table:
//!
//! * the prefix sums `ρ(v, Aᵉ_v)` of transmission times up its root path,
//! * its own load `L(v)` and availability (`v ∈ Λ`),
//! * the budget `k`,
//! * and the `X` tables reported by its children.
//!
//! This is exactly the information a switch has in the *distributed* rendition of
//! SOAR-Gather (Sec. 4.2), where children push their `X` tables upwards; the
//! `soar-dataplane` crate drives this same function from message-passing switch actors,
//! while [`crate::gather`] drives it from a centralized post-order traversal. Keeping a
//! single implementation guarantees the two agree.
//!
//! ## Hot-path shape
//!
//! The actual DP lives in [`fill_node`], which writes into caller-provided slices
//! ([`NodeTableMut`]) and reads children's `X` tables as borrowed slices — in the
//! centralized gather those are arena stripes, so **no per-node heap allocation**
//! happens at all once the [`DpScratch`] ping-pong buffers are warm. The `mCost`
//! inner loops are written against per-row subslices: the row bounds checks are
//! paid once per `(child, ℓ)` instead of once per `(child, ℓ, i, j)` lookup, and
//! the child's distance-1 row (the only row the blue recursion ever reads) is
//! hoisted out of the `ℓ` loop entirely.
//!
//! [`compute_node_table`] remains the allocating convenience wrapper used by the
//! dataplane's switch actors, which own their tables outright.

use crate::tables::{Color, DpTable, NodeTable, INF};
use wide::f64x4;

/// Which `mCost` inner-loop implementation a gather pass runs.
///
/// All kernels are **bit-identical**: they produce exactly the same `X`/`Y`
/// values *and* the same recorded arg-min splits as [`DpKernel::Scalar`]
/// (property-tested in `tests/kernel_identity.rs`). The fast kernels exploit an
/// exact invariant of the SOAR tables: every DP row is non-increasing in the
/// budget index `i` (more blue nodes never cost more), and f64 `+`/`min` are
/// monotone, so the invariant survives every fold without rounding caveats.
///
/// * [`Scalar`](DpKernel::Scalar) — the straight-line reference double loop
///   (the PR 1/2 code path), kept verbatim as the ground truth.
/// * [`Pruned`](DpKernel::Pruned) — scalar iteration order plus two exact
///   monotonicity prunes of the arg-min split search: the candidate range is
///   capped at the child row's *effective width* (the index where its trailing
///   plateau starts — beyond it every candidate is provably no better and loses
///   ties to an earlier split), and the scan exits early once the running
///   minimum is at or below a lower bound on every remaining candidate. For
///   leaf-heavy trees the effective width collapses to ≤ 1 and the quadratic
///   split search becomes linear.
/// * [`Tiled`](DpKernel::Tiled) — the same pruned candidate set, swept in
///   loop-swapped order: for each split `j` (ascending, in tiles of
///   [`TILE_COLS`] columns) the whole budget row is updated with the
///   [`wide::f64x4`] lane type (contiguous loads, compare + blend), and whole
///   tiles are skipped by an exact monotone bound. Ascending `j` with a strict
///   `<` update preserves the scalar first-minimum tie-break.
/// * [`Auto`](DpKernel::Auto) — resolves to the best measured default
///   ([`Pruned`]; see the crate performance notes). Overridable at runtime via
///   the `SOAR_GATHER_KERNEL` environment variable
///   (`scalar | pruned | tiled | auto`).
///
/// [`Pruned`]: DpKernel::Pruned
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(
    feature = "serde",
    derive(serde::Serialize, serde::Deserialize),
    serde(rename_all = "lowercase")
)]
pub enum DpKernel {
    /// Resolve to the measured best (currently [`DpKernel::Pruned`]).
    #[default]
    Auto,
    /// Reference double loop, no pruning.
    Scalar,
    /// Scalar order + exact effective-width cap + early exit.
    Pruned,
    /// Loop-swapped f64x4 column sweep + tile skipping (same pruned set).
    Tiled,
}

/// Column-tile width of the [`DpKernel::Tiled`] sweep. 64 f64 columns touch at
/// most 64 · 8 B = 512 B of the child row per tile, so a tile's working set
/// (child slice + the budget row being updated) stays L1-resident even at
/// budgets in the hundreds.
pub const TILE_COLS: usize = 64;

impl DpKernel {
    /// Parses a kernel name (`scalar | pruned | tiled | auto`), as accepted by
    /// the `SOAR_GATHER_KERNEL` environment override. Unknown names yield
    /// `None` so callers can surface the valid set.
    pub fn from_name(name: &str) -> Option<DpKernel> {
        match name {
            "auto" => Some(DpKernel::Auto),
            "scalar" => Some(DpKernel::Scalar),
            "pruned" => Some(DpKernel::Pruned),
            "tiled" => Some(DpKernel::Tiled),
            _ => None,
        }
    }

    /// Reads the `SOAR_GATHER_KERNEL` override, falling back to `Auto` when the
    /// variable is unset or names an unknown kernel.
    pub fn from_env() -> DpKernel {
        std::env::var("SOAR_GATHER_KERNEL")
            .ok()
            .and_then(|v| DpKernel::from_name(&v))
            .unwrap_or(DpKernel::Auto)
    }

    /// The concrete kernel `Auto` stands for.
    pub fn resolve(self) -> DpKernel {
        match self {
            DpKernel::Auto => DpKernel::Pruned,
            other => other,
        }
    }

    /// Stable name, as recorded in [`DpStats`](crate::api::DpStats) artifacts.
    pub fn name(self) -> &'static str {
        match self {
            DpKernel::Auto => "auto",
            DpKernel::Scalar => "scalar",
            DpKernel::Pruned => "pruned",
            DpKernel::Tiled => "tiled",
        }
    }
}

/// Reusable ping-pong buffers for the per-child prefix recursion (`Y^m`).
///
/// One scratch serves any number of consecutive [`fill_node`] calls; buffers only
/// grow (doubling), so a warm scratch performs no allocation. The buffers are
/// never cleared between nodes or children: every cell is overwritten before it is
/// read (the old INF refill between children was dead work — both buffers are
/// fully rewritten for every `(ℓ, i)` cell on the next child fold).
///
/// The scratch also accumulates the kernel telemetry
/// ([`kernel_counters`](DpScratch::kernel_counters)) that
/// [`DpStats`](crate::api::DpStats) reports per pass.
#[derive(Debug, Default)]
pub struct DpScratch {
    prev_blue: Vec<f64>,
    prev_red: Vec<f64>,
    cur_blue: Vec<f64>,
    cur_red: Vec<f64>,
    /// Arg-min rows of the loop-swapped sweep, kept as f64 so the update is one
    /// mask blend per lane (exact for any real split index: `j < 2^53`).
    arg_blue: Vec<f64>,
    arg_red: Vec<f64>,
    /// Column tiles the `Tiled` kernel actually processed (skipped tiles are
    /// counted under `pruned_splits` instead).
    tiles: usize,
    /// `(i, j)` split candidates the kernel never evaluated — by effective-width
    /// capping, early exit, or whole-tile skipping. 0 for `Scalar`.
    pruned_splits: usize,
}

impl DpScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        DpScratch::default()
    }

    /// Makes the ping-pong buffers at least `cells` long and the arg-min rows at
    /// least `n_i` long. Returns the number of buffers that had to (re)allocate
    /// — 0 once warm.
    fn ensure(&mut self, cells: usize, n_i: usize) -> usize {
        let mut grew = 0;
        for buf in [
            &mut self.prev_blue,
            &mut self.prev_red,
            &mut self.cur_blue,
            &mut self.cur_red,
        ] {
            if buf.len() < cells {
                if buf.capacity() < cells {
                    grew += 1;
                }
                buf.resize(cells.max(buf.capacity()), INF);
            }
        }
        for buf in [&mut self.arg_blue, &mut self.arg_red] {
            if buf.len() < n_i {
                if buf.capacity() < n_i {
                    grew += 1;
                }
                buf.resize(n_i.max(buf.capacity()), 0.0);
            }
        }
        grew
    }

    /// `(tiles, pruned_splits)` accumulated since the last
    /// [`reset_kernel_counters`](DpScratch::reset_kernel_counters).
    pub fn kernel_counters(&self) -> (usize, usize) {
        (self.tiles, self.pruned_splits)
    }

    /// Zeroes the kernel telemetry (called at the start of every gather pass).
    pub fn reset_kernel_counters(&mut self) {
        self.tiles = 0;
        self.pruned_splits = 0;
    }

    /// Current heap footprint of the scratch buffers, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.prev_blue.capacity()
            + self.prev_red.capacity()
            + self.cur_blue.capacity()
            + self.cur_red.capacity()
            + self.arg_blue.capacity()
            + self.arg_red.capacity())
            * 8
    }
}

/// Index where `row`'s trailing plateau starts: the smallest `e` with
/// `row[j] == row[e]` (bitwise) for every `j ≥ e`.
///
/// DP rows are non-increasing in `i`, so every split candidate `j > e` is
/// provably no better than `j = e` *and* loses the first-strict-minimum
/// tie-break to it — capping the arg-min search at `e` is exact in both value
/// and recorded split. For a leaf child's `X` row the plateau starts at index
/// ≤ 1 (`[L·ρ, min(L·ρ, ρ), …]`), which is what collapses the quadratic split
/// search on leaf-heavy trees.
#[inline]
fn effective_width(row: &[f64]) -> usize {
    let mut e = row.len() - 1;
    while e > 0 && row[e - 1].to_bits() == row[e].to_bits() {
        e -= 1;
    }
    e
}

/// Mutable destination slices for one node's table, borrowed from the
/// [`GatherTables`](crate::tables::GatherTables) arena (or from an owned
/// [`NodeTable`]'s buffers). All slices are `n_l · n_i` cells, row-major in `ℓ`,
/// except `splits` which is `(C(v) - 1) · n_l · n_i · 2`.
pub struct NodeTableMut<'a> {
    /// `X_v` destination.
    pub x: &'a mut [f64],
    /// `Y_v(·, ·, B)` destination.
    pub y_blue: &'a mut [f64],
    /// `Y_v(·, ·, R)` destination.
    pub y_red: &'a mut [f64],
    /// Split-decision destination (empty for nodes with fewer than two children).
    pub splits: &'a mut [u32],
}

/// Fills one switch's DP table in place from its children's `X` tables.
///
/// * `path_rho[ℓ]` must hold `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1`; its length is
///   the number of rows `n_l`.
/// * `n_i` is `k + 1`.
/// * `children_x` yields each child's flat `X` table in child order (`n_l + 1`
///   rows of `n_i` columns — i.e. the child's own table); it must yield exactly
///   `n_children` items.
///
/// Returns the number of scratch buffers that had to grow (0 once warm).
#[allow(clippy::too_many_arguments)]
pub fn fill_node<'c>(
    out: NodeTableMut<'_>,
    path_rho: &[f64],
    load: u64,
    available: bool,
    n_i: usize,
    n_children: usize,
    children_x: impl Iterator<Item = &'c [f64]>,
    scratch: &mut DpScratch,
    kernel: DpKernel,
) -> usize {
    if n_children == 0 {
        fill_leaf(out, path_rho, load, available, n_i);
        0
    } else {
        fill_internal(
            out, path_rho, load, available, n_i, n_children, children_x, scratch, kernel,
        )
    }
}

/// Base case (Alg. 3, lines 1-9): a leaf aggregates (blue) for `1 · ρ` or forwards its
/// own workers (red) for `L(v) · ρ`.
///
/// An empty `out.y_blue` marks a `Y`-elided destination (compressed arena): the
/// `Y` rows are skipped and later recomputed on demand by
/// [`GatherTables::y_value`](crate::tables::GatherTables::y_value) with these
/// same expressions.
fn fill_leaf(out: NodeTableMut<'_>, path_rho: &[f64], load: u64, available: bool, n_i: usize) {
    let load = load as f64;
    let elide_y = out.y_blue.is_empty();
    for (l, &rho) in path_rho.iter().enumerate() {
        let red = rho * load;
        let blue = if available { rho } else { INF };
        let row = l * n_i;
        let x_row = &mut out.x[row..row + n_i];
        if !elide_y {
            let yb_row = &mut out.y_blue[row..row + n_i];
            let yr_row = &mut out.y_red[row..row + n_i];
            yr_row.fill(red);
            yb_row[0] = INF;
            yb_row[1..].fill(blue);
        }
        x_row[0] = red;
        x_row[1..].fill(red.min(blue));
    }
}

/// Recursive case (Alg. 3, lines 10-29): fold the children in one at a time through the
/// prefix recursion `Y^m`, recording the arg-min splits (`mCost`) along the way.
#[allow(clippy::too_many_arguments)]
fn fill_internal<'c>(
    out: NodeTableMut<'_>,
    path_rho: &[f64],
    load: u64,
    available: bool,
    n_i: usize,
    n_children: usize,
    mut children_x: impl Iterator<Item = &'c [f64]>,
    scratch: &mut DpScratch,
    kernel: DpKernel,
) -> usize {
    let n_l = path_rho.len();
    let cells = n_l * n_i;
    let load = load as f64;
    let kernel = kernel.resolve();
    let grew = scratch.ensure(cells, n_i);
    let DpScratch {
        prev_blue,
        prev_red,
        cur_blue,
        cur_red,
        arg_blue,
        arg_red,
        tiles,
        pruned_splits,
    } = scratch;

    for m_index in 0..n_children {
        let cx = children_x
            .next()
            .expect("children_x yields one table per child");
        // The only row the blue recursion reads: the child at distance 1.
        // Hoisted out of the ℓ loop (and its bounds check out of the j loop).
        let d1_row = &cx[n_i..2 * n_i];
        if m_index == 0 {
            // First child: Y^1 is a direct lookup, no split to record.
            let cur_blue = &mut cur_blue[..cells];
            let cur_red = &mut cur_red[..cells];
            for (l, &rho) in path_rho.iter().enumerate() {
                let row = l * n_i;
                // Red: c_1 is looked up at distance ℓ + 1; v's own workers travel
                // ℓ links to the barrier.
                let child_row = &cx[row + n_i..row + 2 * n_i];
                let cb_row = &mut cur_blue[row..row + n_i];
                let cr_row = &mut cur_red[row..row + n_i];
                let red_base = rho * load;
                for (cr, &c) in cr_row.iter_mut().zip(child_row) {
                    *cr = c + red_base;
                }
                // Blue: v consumes one blue node; c_1 is looked up at distance 1
                // with the remaining i - 1 nodes.
                cb_row[0] = INF;
                if available {
                    for (cb, &c) in cb_row[1..].iter_mut().zip(d1_row) {
                        *cb = c + rho;
                    }
                } else {
                    cb_row[1..].fill(INF);
                }
            }
        } else {
            let m = m_index + 1; // the paper's 1-based child index
            let prev_blue = &prev_blue[..cells];
            let prev_red = &prev_red[..cells];
            let cur_blue = &mut cur_blue[..cells];
            let cur_red = &mut cur_red[..cells];
            let split_block = &mut out.splits[(m - 2) * cells * 2..(m - 1) * cells * 2];
            // The blue fold always hands the child distance-1 costs, so its
            // effective width is shared by every ℓ row.
            let e_blue = match kernel {
                DpKernel::Scalar => 0,
                _ => effective_width(d1_row),
            };
            for l in 0..n_l {
                let row = l * n_i;
                let child_row = &cx[row + n_i..row + 2 * n_i];
                let pb_row = &prev_blue[row..row + n_i];
                let pr_row = &prev_red[row..row + n_i];
                let cb_row = &mut cur_blue[row..row + n_i];
                let cr_row = &mut cur_red[row..row + n_i];
                let split_row = &mut split_block[row * 2..(row + n_i) * 2];
                match kernel {
                    DpKernel::Auto | DpKernel::Scalar => {
                        mcost_row_scalar(
                            pb_row, pr_row, d1_row, child_row, available, cb_row, cr_row, split_row,
                        );
                    }
                    DpKernel::Pruned => {
                        let e_red = effective_width(child_row);
                        mcost_row_pruned(
                            pb_row,
                            pr_row,
                            d1_row,
                            child_row,
                            available,
                            e_blue,
                            e_red,
                            cb_row,
                            cr_row,
                            split_row,
                            pruned_splits,
                        );
                    }
                    DpKernel::Tiled => {
                        let e_red = effective_width(child_row);
                        mcost_row_tiled(
                            pb_row,
                            pr_row,
                            d1_row,
                            child_row,
                            available,
                            e_blue,
                            e_red,
                            cb_row,
                            cr_row,
                            split_row,
                            arg_blue,
                            arg_red,
                            tiles,
                            pruned_splits,
                        );
                    }
                }
            }
        }
        std::mem::swap(prev_blue, cur_blue);
        std::mem::swap(prev_red, cur_red);
    }

    // Final stage: Y_v = Y^{C(v)}, X_v = min(Y_B, Y_R). An empty `out.y_blue`
    // marks a Y-elided destination (single-child node of a compressed arena —
    // its Y is the first-child fold, recomputed on demand by `y_value`).
    let prev_blue = &prev_blue[..cells];
    let prev_red = &prev_red[..cells];
    if out.y_blue.is_empty() {
        for i in 0..cells {
            out.x[i] = prev_blue[i].min(prev_red[i]);
        }
    } else {
        for i in 0..cells {
            let blue = prev_blue[i];
            let red = prev_red[i];
            out.y_blue[i] = blue;
            out.y_red[i] = red;
            out.x[i] = blue.min(red);
        }
    }
    grew
}

/// Reference `mCost` row: the full quadratic arg-min scan, first strict minimum
/// wins. Every other kernel is property-tested bit-identical to this one.
#[allow(clippy::too_many_arguments)]
fn mcost_row_scalar(
    pb_row: &[f64],
    pr_row: &[f64],
    d1_row: &[f64],
    child_row: &[f64],
    available: bool,
    cb_row: &mut [f64],
    cr_row: &mut [f64],
    split_row: &mut [u32],
) {
    let n_i = cb_row.len();
    for i in 0..n_i {
        // mCost for color B: hand j blue nodes to c_m, keep i - j ≥ 1
        // in the prefix (one of them is v itself).
        let mut best_blue = INF;
        let mut best_blue_j = 0u32;
        if available && i >= 1 {
            for j in 0..i {
                let value = pb_row[i - j] + d1_row[j];
                if value < best_blue {
                    best_blue = value;
                    best_blue_j = j as u32;
                }
            }
        }
        // mCost for color R.
        let mut best_red = INF;
        let mut best_red_j = 0u32;
        for j in 0..=i {
            let value = pr_row[i - j] + child_row[j];
            if value < best_red {
                best_red = value;
                best_red_j = j as u32;
            }
        }
        cb_row[i] = best_blue;
        cr_row[i] = best_red;
        split_row[i * 2] = best_blue_j;
        split_row[i * 2 + 1] = best_red_j;
    }
}

/// One arg-min scan in scalar order with both exact prunes applied.
///
/// Candidates are `value(j) = p[i - j] + c[j]` for `j ∈ [0, hi]`; `p` and `c`
/// are non-increasing DP rows. `e` caps the scan at `c`'s effective width
/// (plateau candidates lose to `j = e`); the early exit fires once no remaining
/// candidate can be *strictly* below the running minimum: every `j' > j` has
/// `p[i - j'] ≥ p[i - j - 1]` and `c[j'] ≥ c[jmax]`. Returns `(min, arg, skipped)`.
#[inline]
fn argmin_pruned(p: &[f64], c: &[f64], i: usize, hi: usize, e: usize) -> (f64, u32, usize) {
    let jmax = hi.min(e);
    let tail_min = c[jmax];
    let mut best = INF;
    let mut best_j = 0u32;
    let mut j = 0;
    loop {
        let value = p[i - j] + c[j];
        if value < best {
            best = value;
            best_j = j as u32;
        }
        if j == jmax {
            break;
        }
        if best <= p[i - j - 1] + tail_min {
            return (best, best_j, hi - j);
        }
        j += 1;
    }
    (best, best_j, hi - jmax)
}

/// `mCost` row in scalar iteration order with effective-width capping and
/// early exit. Bit-identical to [`mcost_row_scalar`] (values and splits).
#[allow(clippy::too_many_arguments)]
fn mcost_row_pruned(
    pb_row: &[f64],
    pr_row: &[f64],
    d1_row: &[f64],
    child_row: &[f64],
    available: bool,
    e_blue: usize,
    e_red: usize,
    cb_row: &mut [f64],
    cr_row: &mut [f64],
    split_row: &mut [u32],
    pruned_splits: &mut usize,
) {
    let n_i = cb_row.len();
    let mut skipped = 0usize;
    for i in 0..n_i {
        let (best_blue, best_blue_j) = if available && i >= 1 {
            let (v, j, s) = argmin_pruned(pb_row, d1_row, i, i - 1, e_blue);
            skipped += s;
            (v, j)
        } else {
            (INF, 0)
        };
        let (best_red, best_red_j, s) = argmin_pruned(pr_row, child_row, i, i, e_red);
        skipped += s;
        cb_row[i] = best_blue;
        cr_row[i] = best_red;
        split_row[i * 2] = best_blue_j;
        split_row[i * 2 + 1] = best_red_j;
    }
    *pruned_splits += skipped;
}

/// One column of the loop-swapped sweep: fold split candidate `j` (cost `c`)
/// into the running minima of every budget cell `i ∈ [start, n_i)`, four lanes
/// at a time. The candidate value for cell `i` is `p[i - j] + c` — a contiguous
/// shifted load of `p` — and the update is a strict-`<` compare + blend, so
/// ascending `j` reproduces the scalar first-minimum tie-break exactly.
#[inline]
fn fold_column(cur: &mut [f64], arg: &mut [f64], p: &[f64], c: f64, j: usize, start: usize) {
    let n_i = cur.len();
    let cv = f64x4::splat(c);
    let jv = f64x4::splat(j as f64);
    let mut i = start;
    while i + f64x4::LANES <= n_i {
        let value = f64x4::from_slice(&p[i - j..]) + cv;
        let cur_v = f64x4::from_slice(&cur[i..]);
        let mask = value.cmp_lt(cur_v);
        mask.blend(value, cur_v).write_to_slice(&mut cur[i..]);
        let arg_v = f64x4::from_slice(&arg[i..]);
        mask.blend(jv, arg_v).write_to_slice(&mut arg[i..]);
        i += f64x4::LANES;
    }
    while i < n_i {
        let value = p[i - j] + c;
        if value < cur[i] {
            cur[i] = value;
            arg[i] = j as f64;
        }
        i += 1;
    }
}

/// Loop-swapped sweep over one color: columns `j ∈ [0, jmax]` in tiles of
/// [`TILE_COLS`], rows updated with [`fold_column`]. `off` is 0 for red
/// (`i ≥ j`) and 1 for blue (`i ≥ j + 1`: the prefix keeps `v` itself).
///
/// A whole tile `[t0, t1]` is skipped when its cheapest possible candidate —
/// `p[n_i - 1 - t0] + c[t1]` by row monotonicity — is at or above the most
/// improvable current cell `cur[t0 + off]` (rows stay non-increasing throughout
/// the sweep, and cells below `t0 + off` have no candidates in the tile). A
/// skipped candidate can then never win a strict-`<` update, so the skip is
/// exact in both value and recorded split.
#[allow(clippy::too_many_arguments)]
fn sweep_color(
    cur: &mut [f64],
    arg: &mut [f64],
    p: &[f64],
    c: &[f64],
    e: usize,
    off: usize,
    tiles: &mut usize,
    pruned_splits: &mut usize,
) {
    let n_i = cur.len();
    let jmax = (n_i - 1 - off).min(e);
    // Candidates skipped by the effective-width cap: columns jmax+1 ..= n_i-1-off,
    // column j covering cells j+off .. n_i-1.
    let capped = n_i - 1 - off - jmax;
    *pruned_splits += capped * (n_i - off - jmax) - capped * (capped + 1) / 2;
    let mut t0 = 0;
    while t0 <= jmax {
        let t1 = (t0 + TILE_COLS - 1).min(jmax);
        if t0 > 0 && p[n_i - 1 - t0] + c[t1] >= cur[t0 + off] {
            let w = t1 - t0 + 1;
            *pruned_splits += w * (n_i - off - t0) - w * (w - 1) / 2;
            t0 = t1 + 1;
            continue;
        }
        *tiles += 1;
        for (j, &cj) in c.iter().enumerate().take(t1 + 1).skip(t0) {
            fold_column(cur, arg, p, cj, j, j + off);
        }
        t0 = t1 + 1;
    }
}

/// `mCost` row via the loop-swapped f64x4 column sweep. Bit-identical to
/// [`mcost_row_scalar`] (values and splits): the candidate set is the same
/// pruned set as [`mcost_row_pruned`], evaluated with identical f64 expressions
/// in ascending-`j` order with strict-`<` updates.
#[allow(clippy::too_many_arguments)]
fn mcost_row_tiled(
    pb_row: &[f64],
    pr_row: &[f64],
    d1_row: &[f64],
    child_row: &[f64],
    available: bool,
    e_blue: usize,
    e_red: usize,
    cb_row: &mut [f64],
    cr_row: &mut [f64],
    split_row: &mut [u32],
    arg_blue: &mut [f64],
    arg_red: &mut [f64],
    tiles: &mut usize,
    pruned_splits: &mut usize,
) {
    let n_i = cb_row.len();
    let arg_blue = &mut arg_blue[..n_i];
    let arg_red = &mut arg_red[..n_i];
    cr_row.fill(INF);
    arg_red.fill(0.0);
    sweep_color(
        cr_row,
        arg_red,
        pr_row,
        child_row,
        e_red,
        0,
        tiles,
        pruned_splits,
    );
    cb_row.fill(INF);
    arg_blue.fill(0.0);
    if available && n_i > 1 {
        sweep_color(
            cb_row,
            arg_blue,
            pb_row,
            d1_row,
            e_blue,
            1,
            tiles,
            pruned_splits,
        );
    }
    for i in 0..n_i {
        split_row[i * 2] = arg_blue[i] as u32;
        split_row[i * 2 + 1] = arg_red[i] as u32;
    }
}

/// Computes the full DP table of one switch from its children's `X` tables, as an
/// owned [`NodeTable`].
///
/// * `path_rho[ℓ]` must hold `ρ(v, Aᵉ_v)` for `ℓ = 0 ..= D(v) + 1`.
/// * `children_x[m]` is the flat `X` table of the `m`-th child (row-major in `ℓ`, with
///   `k + 1` columns and at least `D(v) + 3` rows — i.e. the child's own table).
///
/// The returned table contains `X_v`, the final-stage `Y_v(·, ·, B/R)` and the recorded
/// split decisions for children `m ≥ 2`. This is the entry point of the
/// *distributed* rendition (`soar-dataplane`), where every switch owns its table;
/// the centralized gather instead fills arena slices via [`fill_node`] and never
/// allocates per node.
pub fn compute_node_table(
    path_rho: &[f64],
    load: u64,
    available: bool,
    k: usize,
    children_x: &[Vec<f64>],
) -> NodeTable {
    let n_l = path_rho.len();
    let mut table = NodeTable::new(n_l, k + 1, children_x.len(), path_rho.to_vec());
    let mut scratch = DpScratch::new();
    fill_node(
        NodeTableMut {
            x: &mut table.x,
            y_blue: &mut table.y_blue,
            y_red: &mut table.y_red,
            splits: &mut table.splits,
        },
        path_rho,
        load,
        available,
        k + 1,
        children_x.len(),
        children_x.iter().map(|v| v.as_slice()),
        &mut scratch,
        DpKernel::Scalar,
    );
    table
}

/// Given a switch's own table and its actual distance `ℓ*` to the nearest barrier plus
/// the number of blue nodes `i` it must distribute, decides the switch's color exactly
/// as SOAR-Color does (Alg. 4, line 6; leaves are handled by the caller).
///
/// Generic over [`DpTable`] so it serves both the dataplane's owned tables and the
/// arena-backed views of the centralized solver.
pub fn decide_color<T: DpTable + ?Sized>(table: &T, l: usize, i: usize) -> Color {
    if table.y(l, i, Color::Blue) < table.y(l, i, Color::Red) {
        Color::Blue
    } else {
        Color::Red
    }
}

/// Computes how many blue nodes each child receives when `v` (whose table is given) has
/// `i` blue nodes to distribute, sits at distance `ℓ*` from its barrier, and takes the
/// given color. Returns one entry per child, in child order (Alg. 4, lines 9-16).
pub fn child_budgets<T: DpTable + ?Sized>(
    table: &T,
    n_children: usize,
    l: usize,
    i: usize,
    color: Color,
) -> Vec<usize> {
    let mut budgets = vec![0usize; n_children];
    let mut remaining = i;
    for m in (2..=n_children).rev() {
        let j = table.split(m, l, remaining, color) as usize;
        budgets[m - 1] = j;
        remaining -= j;
    }
    if n_children >= 1 {
        budgets[0] = match color {
            Color::Blue => remaining.saturating_sub(1),
            Color::Red => remaining,
        };
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_table_values() {
        let table = compute_node_table(&[0.0, 1.0, 2.0], 3, true, 2, &[]);
        assert_eq!(table.x(1, 0), 3.0);
        assert_eq!(table.x(1, 1), 1.0);
        assert_eq!(table.x(2, 0), 6.0);
        assert_eq!(table.x(2, 2), 2.0);
        assert_eq!(table.y(2, 1, Color::Red), 6.0);
        assert_eq!(table.y(2, 1, Color::Blue), 2.0);

        let unavailable = compute_node_table(&[0.0, 1.0], 3, false, 2, &[]);
        assert_eq!(unavailable.x(1, 2), 3.0);
        assert_eq!(unavailable.y(1, 2, Color::Blue), INF);
    }

    #[test]
    fn internal_node_matches_manual_computation() {
        // Reproduce the left internal switch of Fig. 5 (children with loads 2 and 6,
        // unit rates): its children's X tables are X(ℓ, 0) = L·ℓ and X(ℓ, i ≥ 1) = ℓ.
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        assert_eq!(table.x(0, 0), 8.0);
        assert_eq!(table.x(0, 1), 3.0);
        assert_eq!(table.x(0, 2), 2.0);
        assert_eq!(table.x(1, 0), 16.0);
        assert_eq!(table.x(1, 1), 6.0);
        assert_eq!(table.x(2, 1), 9.0);
    }

    #[test]
    fn decide_color_and_child_budgets() {
        let k = 2;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 4 * (k + 1)];
            for l in 0..4 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let table = compute_node_table(&[0.0, 1.0, 2.0], 0, true, k, &[child(2.0), child(6.0)]);
        // At ℓ = 1 with i = 1 the red configuration (child-2 blue) is cheaper than
        // being blue itself: X(1,1) = 6 comes from the red row.
        assert_eq!(decide_color(&table, 1, 1), Color::Red);
        let budgets = child_budgets(&table, 2, 1, 1, Color::Red);
        assert_eq!(budgets.iter().sum::<usize>(), 1);
        assert_eq!(
            budgets,
            vec![0, 1],
            "the heavy child receives the blue node"
        );

        // With i = 0 nothing is distributed.
        assert_eq!(child_budgets(&table, 2, 1, 0, Color::Red), vec![0, 0]);
    }

    #[test]
    fn scratch_reuse_is_allocation_free_and_result_invariant() {
        let k = 3;
        let child = |load: f64| -> Vec<f64> {
            let mut x = vec![0.0; 5 * (k + 1)];
            for l in 0..5 {
                x[l * (k + 1)] = load * l as f64;
                for i in 1..=k {
                    x[l * (k + 1) + i] = (l as f64).min(load * l as f64);
                }
            }
            x
        };
        let children: Vec<Vec<f64>> = vec![child(2.0), child(6.0), child(5.0)];
        let child_slices: Vec<&[f64]> = children.iter().map(|v| v.as_slice()).collect();
        let reference = compute_node_table(&[0.0, 1.0, 2.0, 3.0], 1, true, k, &children);

        let mut scratch = DpScratch::new();
        let n_l = 4;
        let n_i = k + 1;
        let cells = n_l * n_i;
        let mut runs = Vec::new();
        for round in 0..3 {
            let mut x = vec![0.0; cells];
            let mut yb = vec![0.0; cells];
            let mut yr = vec![0.0; cells];
            let mut splits = vec![0u32; 2 * cells * 2];
            let grew = fill_node(
                NodeTableMut {
                    x: &mut x,
                    y_blue: &mut yb,
                    y_red: &mut yr,
                    splits: &mut splits,
                },
                &[0.0, 1.0, 2.0, 3.0],
                1,
                true,
                n_i,
                3,
                child_slices.iter().copied(),
                &mut scratch,
                DpKernel::Scalar,
            );
            if round == 0 {
                assert!(grew > 0, "cold scratch must grow once");
            } else {
                assert_eq!(grew, 0, "warm scratch must not allocate");
            }
            runs.push((x, yb, yr, splits));
        }
        // Every reuse round is bit-identical to the first and to the owned wrapper.
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        assert_eq!(runs[0].0, reference.x);
        assert_eq!(runs[0].1, reference.y_blue);
        assert_eq!(runs[0].2, reference.y_red);
        assert_eq!(runs[0].3, reference.splits);
        assert!(scratch.memory_bytes() >= 4 * cells * 8);
    }
}
