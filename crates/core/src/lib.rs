//! # soar-core
//!
//! An implementation of **SOAR** (SOw-And-Reap), the optimal algorithm of
//! Segal, Avin and Scalosub, *"SOAR: Minimizing Network Utilization with Bounded
//! In-network Computing"* (CoNEXT 2021), for the **Bounded In-network Computing**
//! (φ-BIC) placement problem:
//!
//! > Given a weighted tree network `T = (V, E, ω)`, a network load `L : S → ℕ`, a set
//! > of available switches `Λ ⊆ S`, and a budget `k`, find a set `U ⊆ Λ` of at most `k`
//! > aggregation switches minimizing the utilization complexity
//! > `φ(T, L, U) = Σ_e msg_e(T, L, U) · ρ(e)` of a Reduce operation.
//!
//! The crate provides:
//!
//! * [`solve`] / [`solver`] — the end-to-end optimal solver
//!   (`O(n · h(T) · k²)` per Theorem 4.1);
//! * [`gather`] — SOAR-Gather (Algorithm 3), the bottom-up dynamic program over the
//!   parameterized potential function, exposing its tables for inspection;
//! * [`color`] — SOAR-Color (Algorithm 4), the top-down traceback that extracts an
//!   optimal set of blue switches from those tables;
//! * [`strategies`] — the contending placements of Sec. 3/5 (`Top`, `Max`, `Level`,
//!   random, greedy, all-red, all-blue) behind a single [`Strategy`] enum;
//! * [`brute`] — an exhaustive oracle used to verify optimality in tests.
//!
//! ```
//! use soar_core::{solve, Strategy};
//! use soar_topology::builders;
//!
//! // The paper's motivating example (Fig. 2): leaf loads 2, 6, 5, 4, budget k = 2.
//! let mut tree = builders::complete_binary_tree(7);
//! for (leaf, load) in [(3, 2), (4, 6), (5, 5), (6, 4)] {
//!     tree.set_load(leaf, load);
//! }
//! let optimal = solve(&tree, 2);
//! assert_eq!(optimal.cost, 20.0);                       // Fig. 2(d)
//! assert_eq!(optimal.coloring.blue_nodes(), vec![2, 4]); // unique optimum (Fig. 3(b))
//!
//! // The intuitive strategies fall short (Figs. 2(a)-(c)).
//! let mut rng = rand::rng();
//! assert!(Strategy::Level.solve(&tree, 2, &mut rng).cost > optimal.cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod brute;
pub mod color;
pub mod gather;
pub mod node_dp;
pub mod solver;
pub mod strategies;
pub mod tables;

pub use brute::brute_force;
pub use color::{soar_color, soar_color_exact};
pub use gather::soar_gather;
pub use solver::{solutions_for_all_budgets, solve, solve_with_tables, Solution};
pub use strategies::Strategy;
pub use tables::{Color, GatherTables, NodeTable};

/// Convenient prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::strategies::Strategy;
    pub use crate::{brute_force, soar_color, soar_gather, solve, Solution};
    pub use soar_reduce::{cost, Coloring};
    pub use soar_topology::prelude::*;
}
