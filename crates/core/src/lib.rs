//! # soar-core
//!
//! An implementation of **SOAR** (SOw-And-Reap), the optimal algorithm of
//! Segal, Avin and Scalosub, *"SOAR: Minimizing Network Utilization with Bounded
//! In-network Computing"* (CoNEXT 2021), for the **Bounded In-network Computing**
//! (φ-BIC) placement problem:
//!
//! > Given a weighted tree network `T = (V, E, ω)`, a network load `L : S → ℕ`, a set
//! > of available switches `Λ ⊆ S`, and a budget `k`, find a set `U ⊆ Λ` of at most `k`
//! > aggregation switches minimizing the utilization complexity
//! > `φ(T, L, U) = Σ_e msg_e(T, L, U) · ρ(e)` of a Reduce operation.
//!
//! ## The Instance / Solver API
//!
//! The recommended entry point is [`api`]: an immutable [`Instance`] bundles the
//! whole problem `(T, L, Λ, k)`, every placement algorithm implements the
//! [`Solver`] trait behind the string-keyed registry [`api::solvers`], and
//! [`api::solve_batch`] / [`api::sweep_budgets`] fan work out across threads while
//! sharing one SOAR-Gather pass across all budgets of a sweep:
//!
//! ```
//! use soar_core::api::{solvers, Instance, Solver, SoarSolver, TopologySpec};
//! use soar_topology::load::LoadSpec;
//!
//! // The paper's motivating example (Fig. 2): leaf loads 2, 6, 5, 4, budget k = 2.
//! let instance = Instance::builder()
//!     .topology(TopologySpec::CompleteKary { arity: 2, n_switches: 7 })
//!     .leaf_loads(LoadSpec::Explicit(vec![2, 6, 5, 4]))
//!     .budget(2)
//!     .build()
//!     .unwrap();
//!
//! let report = SoarSolver.solve(&instance);
//! assert_eq!(report.solution.cost, 20.0);                       // Fig. 2(d)
//! assert_eq!(report.solution.coloring.blue_nodes(), vec![2, 4]); // unique optimum
//!
//! // The intuitive strategies fall short (Figs. 2(a)-(c)).
//! let level = solvers::by_name("level").unwrap().solve(&instance);
//! assert!(level.solution.cost > report.solution.cost);
//!
//! // One gather pass yields the whole cost-vs-budget curve (Fig. 3).
//! let curve = soar_core::api::sweep_budgets(&instance, &[0, 1, 2, 3, 4]);
//! let costs: Vec<f64> = curve.iter().map(|r| r.solution.cost).collect();
//! assert_eq!(costs, vec![51.0, 35.0, 20.0, 15.0, 11.0]);
//! ```
//!
//! ## Algorithm layers
//!
//! The lower-level pieces remain available for callers that want direct control:
//!
//! * [`solve`] / [`solver`] — the end-to-end optimal solver on a bare [`Tree`]
//!   (`O(n · h(T) · k²)` per Theorem 4.1);
//! * [`gather`] — SOAR-Gather (Algorithm 3), the bottom-up dynamic program over the
//!   parameterized potential function, exposing its tables for inspection;
//! * [`color`] — SOAR-Color (Algorithm 4), the top-down traceback that extracts an
//!   optimal set of blue switches from those tables;
//! * [`workspace`] — the reusable [`SolverWorkspace`] (DP arena + scratch) behind
//!   the allocation-free hot path, with per-thread instances used by the API
//!   layer;
//! * [`strategies`] — the contending placements of Sec. 3/5 (`Top`, `Max`, `Level`,
//!   random, greedy, all-red, all-blue) behind a single [`Strategy`] enum;
//! * [`brute`] — an exhaustive oracle used to verify optimality in tests.
//!
//! With the `serde` feature enabled, [`Instance`], [`Solution`] and
//! [`api::SolveReport`] serialize to JSON (via the workspace `serde_json`), so
//! scenarios and bench results can be persisted and replayed.
//!
//! ## Performance notes
//!
//! The gather pass is **allocation-free after warm-up**: all per-switch DP
//! tables live in one flat arena ([`GatherTables`], offsets precomputed from the
//! tree shape, nodes grouped by level), children's `X` tables are borrowed as
//! slices instead of cloned, and the `mCost` ping-pong buffers live in a
//! reusable [`workspace::SolverWorkspace`]. [`api::SoarSolver`] and the sweep
//! entry points run on a per-thread workspace, so batches and sweeps replay warm
//! arenas; [`api::DpStats::alloc_events`] reports 0 for every steady-state
//! solve. Large trees (≥ [`workspace::PARALLEL_GATHER_MIN_SWITCHES`] switches)
//! additionally fill each level's nodes concurrently on the `soar-pool`
//! work-stealing pool — children are finalized before parents by construction,
//! and the result is bit-identical to the sequential pass.
//!
//! Measured on the `BT(n)` power-law instances of the `gather` microbench
//! (`cargo run --release -p soar-bench --bin bench_gather`, `k = 16`, one
//! 2.x GHz core), against the pre-arena implementation that cloned children's
//! tables and allocated four scratch buffers per node:
//!
//! | switches | before (clone + per-node alloc) | fresh arena | warm workspace |
//! |---------:|--------------------------------:|------------:|---------------:|
//! |    1 023 |                         4.35 ms |     3.76 ms |    **2.08 ms** |
//! |    4 095 |                        20.10 ms |    18.28 ms |   **10.48 ms** |
//! |   16 383 |                       125.99 ms |   101.83 ms |   **51.45 ms** |
//!
//! The warm-workspace path — the steady state of every batch, sweep and
//! repeated solve — is **~2× faster** end to end, with zero heap allocations
//! per gather (verified by the `alloc_events` stat and the `bench-smoke` CI
//! job, which fails if a warm pass ever allocates again).
//!
//! The `mCost` inner loop itself comes in three exact kernels behind
//! [`node_dp::DpKernel`] — `Scalar` (the textbook reference), `Pruned`
//! (monotonicity-based split pruning: DP rows are non-increasing in the item
//! index, so the effective row width and a tail early-exit bound the scan
//! without ever changing a value *or* a recorded arg-min split), and `Tiled`
//! (64-column blocks folded through an `f64x4`-style shim, with whole tiles
//! skipped by the same monotone bound). All three are **bit-identical** —
//! values and splits — which the `kernel_identity` property tests pin across
//! adversarial shapes, budgets straddling the lane and tile widths, and
//! incremental updates. `Auto` (the default) resolves to `Pruned`, the
//! measured winner: on the warm `BT(16 383)` point above it takes 32 ms vs
//! 68 ms scalar and 35 ms tiled. Force a kernel per workspace with
//! [`workspace::SolverWorkspace::set_kernel`] or globally with
//! `SOAR_GATHER_KERNEL=scalar|pruned|tiled`; [`api::DpStats::kernel`],
//! [`api::DpStats::tiles`] and [`api::DpStats::pruned_splits`] report what
//! actually ran.
//!
//! At 100k–1M switches the arena itself is the bottleneck, so trees with at
//! least [`workspace::COMPRESS_MIN_SWITCHES`] switches lay out a **compressed
//! arena**: nodes with at most one child skip their `Y` blocks entirely
//! (their `Y` row is a cheap function of the child's `X` row, recomputed
//! bit-identically on demand by [`GatherTables::y_value`]). On a complete
//! 16-ary tree — where ~94 % of switches are leaves — this cuts the arena
//! roughly 3×: a 100k-switch, `k = 16` solve peaks at 166 MB and replays
//! warm in 82 ms, and a million-switch solve fits comfortably in memory and
//! stays allocation-free when warm (the `scale-smoke` CI job gates both, and
//! the ignored `scale_1m` test runs the 1M case end to end). After a big
//! solve the workspace gives the memory back: arenas past
//! [`workspace::SHRINK_BIG_BYTES`] are truncated to the live size once they
//! sit idle for [`workspace::SHRINK_BIG_AFTER_PASSES`] smaller passes.
//!
//! For *dynamic* workloads the workspace additionally supports **incremental
//! updates**: [`workspace::SolverWorkspace::gather_update`] refills only an
//! ancestor-closed set of dirty nodes (a localized change invalidates only
//! root-to-leaf paths of the tree DP), bit-identical to a from-scratch gather,
//! and SOAR-Color streams through the workspace's reusable coloring
//! ([`workspace::SolverWorkspace::trace_best`]). The `soar-online` crate
//! builds its epoch loop on exactly these two entry points;
//! [`api::DpStats::cells_written`] reports the per-pass work.
//!
//! [`Instance`]: api::Instance
//! [`Solver`]: api::Solver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod brute;
pub mod color;
pub mod gather;
pub mod node_dp;
pub mod solver;
pub mod strategies;
pub mod tables;
pub mod workspace;

pub use api::{
    solve_batch, solve_matrix, sweep_budgets, sweep_budgets_batch, BruteForceSolver, Instance,
    InstanceBuilder, SoarSolver, SolveReport, Solver, StrategySolver, TopologySpec,
};
pub use brute::brute_force;
pub use color::{soar_color, soar_color_exact};
pub use gather::soar_gather;
pub use node_dp::DpKernel;
pub use solver::{solutions_for_all_budgets, solve, solve_with_tables, Solution};
pub use strategies::Strategy;
pub use tables::{Color, DpTable, GatherTables, NodeTable, NodeTableView};
pub use workspace::SolverWorkspace;

/// Convenient prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::api::{
        solve_batch, solve_matrix, solvers, sweep_budgets, sweep_budgets_batch, Instance,
        SoarSolver, SolveReport, Solver, StrategySolver, TopologySpec,
    };
    pub use crate::strategies::Strategy;
    pub use crate::{brute_force, soar_color, soar_gather, solve, Solution};
    pub use soar_reduce::{cost, Coloring};
    pub use soar_topology::prelude::*;
}
