//! Analysis utilities built on top of the solver: cost-vs-budget curves, marginal
//! gains, strategy comparisons and structural observations about optimal placements
//! (such as the non-monotonicity of the optimal blue-node sets highlighted in Fig. 3).
//!
//! These helpers back the evaluation harness (`soar-bench`) and are also handy for
//! interactive exploration of a concrete deployment question ("how many aggregation
//! switches do we need to cut the Reduce footprint in half?").

use crate::gather::soar_gather;
use crate::solver::{solutions_for_all_budgets, Solution};
use crate::strategies::Strategy;
use rand::Rng;
use soar_reduce::{cost, Coloring};
use soar_topology::Tree;

/// The optimal cost curve of an instance: one [`Solution`] per budget `0 ..= k_max`.
#[derive(Debug, Clone, PartialEq)]
pub struct CostCurve {
    /// The per-budget optimal solutions (index = budget).
    pub solutions: Vec<Solution>,
    /// The all-red baseline cost of the instance.
    pub all_red: f64,
}

impl CostCurve {
    /// Computes the optimal cost curve with a single gather pass.
    pub fn compute(tree: &Tree, k_max: usize) -> Self {
        let tables = soar_gather(tree, k_max);
        let solutions = solutions_for_all_budgets(tree, &tables);
        let all_red = cost::phi(tree, &Coloring::all_red(tree.n_switches()));
        CostCurve { solutions, all_red }
    }

    /// The largest budget covered by this curve.
    pub fn k_max(&self) -> usize {
        self.solutions.len().saturating_sub(1)
    }

    /// Optimal cost for a given budget.
    pub fn cost_at(&self, k: usize) -> f64 {
        self.solutions[k].cost
    }

    /// Optimal cost normalized to the all-red baseline.
    pub fn normalized_at(&self, k: usize) -> f64 {
        crate::solver::normalize(self.solutions[k].cost, self.all_red)
    }

    /// The marginal gain of the `k`-th blue node: `cost(k-1) − cost(k)` (zero for `k = 0`).
    pub fn marginal_gain(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.solutions[k - 1].cost - self.solutions[k].cost
        }
    }

    /// The smallest budget whose optimal cost is at most `(1 − saving) ·` all-red, or
    /// `None` if the curve never reaches that saving.
    pub fn budget_for_saving(&self, saving: f64) -> Option<usize> {
        let target = self.all_red * (1.0 - saving);
        (0..self.solutions.len()).find(|&k| self.cost_at(k) <= target + 1e-9)
    }

    /// Budgets at which the optimal blue-node set is **not** a superset of the previous
    /// budget's optimal set — the non-monotonicity phenomenon illustrated by Fig. 3.
    pub fn non_monotone_budgets(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for k in 1..self.solutions.len() {
            let previous = &self.solutions[k - 1].coloring;
            let current = &self.solutions[k].coloring;
            let nested = previous.iter_blue().all(|v| current.is_blue(v));
            if !nested {
                out.push(k);
            }
        }
        out
    }
}

/// Outcome of one strategy within a [`comparison`].
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The strategy that produced this outcome.
    pub strategy: Strategy,
    /// Its utilization complexity on the instance.
    pub cost: f64,
    /// Its cost normalized to the all-red baseline.
    pub normalized: f64,
    /// Its cost relative to the optimum (1.0 means optimal).
    pub optimality_ratio: f64,
    /// The placement it chose.
    pub coloring: Coloring,
}

/// Compares a set of strategies on one instance and budget, sorted best-first.
///
/// The returned list always contains the optimal (SOAR) outcome so the
/// `optimality_ratio` fields are well defined even if `strategies` omits it.
pub fn comparison<R: Rng + ?Sized>(
    tree: &Tree,
    k: usize,
    strategies: &[Strategy],
    rng: &mut R,
) -> Vec<StrategyOutcome> {
    let all_red = cost::phi(tree, &Coloring::all_red(tree.n_switches()));
    let optimal = crate::solver::solve(tree, k);
    let mut outcomes: Vec<StrategyOutcome> = Vec::new();
    let mut push = |strategy: Strategy, coloring: Coloring| {
        let cost_value = cost::phi(tree, &coloring);
        outcomes.push(StrategyOutcome {
            strategy,
            cost: cost_value,
            normalized: crate::solver::normalize(cost_value, all_red),
            optimality_ratio: crate::solver::normalize(cost_value, optimal.cost),
            coloring,
        });
    };
    push(Strategy::Soar, optimal.coloring.clone());
    for &strategy in strategies {
        if strategy == Strategy::Soar {
            continue;
        }
        push(strategy, strategy.place(tree, k, rng));
    }
    outcomes.sort_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn cost_curve_matches_fig3_and_marginal_gains_sum_up() {
        let tree = fig2_tree();
        let curve = CostCurve::compute(&tree, 4);
        assert_eq!(curve.k_max(), 4);
        assert_eq!(curve.all_red, 51.0);
        assert_eq!(curve.cost_at(0), 51.0);
        assert_eq!(curve.cost_at(2), 20.0);
        assert_eq!(curve.cost_at(4), 11.0);
        assert!((curve.normalized_at(2) - 20.0 / 51.0).abs() < 1e-12);
        let total_gain: f64 = (0..=4).map(|k| curve.marginal_gain(k)).sum();
        assert!((total_gain - (51.0 - 11.0)).abs() < 1e-9);
        assert_eq!(curve.marginal_gain(0), 0.0);
    }

    #[test]
    fn budget_for_saving_finds_the_first_sufficient_budget() {
        let tree = fig2_tree();
        let curve = CostCurve::compute(&tree, 7);
        // 20/51 ≈ 0.39, so a 60% saving needs k = 2; a 75% saving needs k = 4 (11/51 ≈ 0.22).
        assert_eq!(curve.budget_for_saving(0.30), Some(1));
        assert_eq!(curve.budget_for_saving(0.60), Some(2));
        assert_eq!(curve.budget_for_saving(0.75), Some(4));
        assert_eq!(curve.budget_for_saving(0.99), None);
        assert_eq!(curve.budget_for_saving(0.0), Some(0));
    }

    #[test]
    fn non_monotone_budgets_detected_on_the_paper_example() {
        let tree = fig2_tree();
        let curve = CostCurve::compute(&tree, 4);
        // Fig. 3: going from k = 2 ({2, 4}) to k = 3 ({4, 5, 6}) drops switch 2, so
        // budget 3 is a non-monotone step.
        assert!(curve.non_monotone_budgets().contains(&3));
    }

    #[test]
    fn comparison_ranks_soar_first() {
        let tree = fig2_tree();
        let mut rng = StdRng::seed_from_u64(0);
        let outcomes = comparison(
            &tree,
            2,
            &[Strategy::Top, Strategy::MaxLoad, Strategy::Level],
            &mut rng,
        );
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[0].strategy, Strategy::Soar);
        assert_eq!(outcomes[0].cost, 20.0);
        assert!((outcomes[0].optimality_ratio - 1.0).abs() < 1e-12);
        for pair in outcomes.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
        }
        let level = outcomes
            .iter()
            .find(|o| o.strategy == Strategy::Level)
            .unwrap();
        assert!((level.optimality_ratio - 21.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_handles_zero_load_instances() {
        let tree = builders::complete_binary_tree(7);
        let mut rng = StdRng::seed_from_u64(1);
        let outcomes = comparison(&tree, 2, &[Strategy::Top], &mut rng);
        for outcome in outcomes {
            assert_eq!(outcome.normalized, 1.0);
            assert_eq!(outcome.optimality_ratio, 1.0);
        }
    }
}
