//! Property test: spans emitted by instrumented solves are well-formed.
//!
//! Across randomized pool-parallel solves (full gathers, parallel gathers,
//! incremental updates, tracebacks), every thread's span stream must satisfy
//! the trace-format invariants the Chrome exporter relies on:
//!
//! * every `End` pairs with the innermost open `Begin` of the same name —
//!   strict LIFO nesting per thread (the RAII guards guarantee it; this test
//!   checks the ring actually preserved it);
//! * timestamps are monotone non-decreasing per thread;
//! * the stream is balanced at quiescence (no span left open);
//! * the phase names the `soar trace` breakdown keys on are all present.
//!
//! One `#[test]` only: tracing is process-global state, so concurrent tests in
//! one binary would interleave their spans. Integration-test binaries run one
//! file per process, which is exactly the isolation this needs.

use soar_core::workspace::{with_thread_workspace, SolverWorkspace};
use soar_obs::span::RING_CAP;
use soar_pool::ThreadPool;
use soar_topology::{builders, Tree};

/// Deterministic xorshift* PRNG — no rand dep needed.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn random_tree(rng: &mut XorShift) -> Tree {
    let n = [7usize, 15, 31, 63, 127, 255][(rng.next() % 6) as usize];
    let mut tree = match rng.next() % 3 {
        0 => builders::complete_binary_tree(n),
        1 => builders::complete_binary_tree_bt(n),
        _ => builders::star(n),
    };
    for v in tree.leaves().collect::<Vec<_>>() {
        tree.set_load(v, rng.next() % 17 + 1);
    }
    tree
}

#[test]
fn spans_from_randomized_parallel_solves_are_well_formed() {
    let pool = ThreadPool::new(4);
    let mut rng = XorShift(0x0B5E_55AB_1E5E_ED00);

    soar_obs::set_tracing(true);
    // A mix of every instrumented path, some sequential on this thread, some
    // fanned out over the pool (workers record on their own rings).
    for round in 0..12 {
        let trees: Vec<Tree> = (0..6).map(|_| random_tree(&mut rng)).collect();
        let budgets: Vec<usize> = trees.iter().map(|_| (rng.next() % 6) as usize).collect();
        let indices: Vec<usize> = (0..trees.len()).collect();
        let _ = pool.map(&indices, |&t| {
            with_thread_workspace(|ws| ws.solve(&trees[t], budgets[t]).cost)
        });

        // A parallel gather: per-level spans on this thread, stripe spans on
        // the workers.
        let mut ws = SolverWorkspace::new();
        let _ = ws.gather_parallel(&trees[0], budgets[0].max(1), &pool);
        let _ = ws.trace_best(&trees[0]);

        // An incremental update (dirty root path of a leaf).
        let mut tree = trees[round % trees.len()].clone();
        let k = 3;
        let _ = ws.gather(&tree, k);
        let leaf = tree.leaves().next().unwrap();
        tree.set_load(leaf, rng.next() % 23 + 1);
        let mut dirty = vec![leaf];
        let mut v = leaf;
        while let Some(p) = tree.parent(v) {
            dirty.push(p);
            v = p;
        }
        let _ = ws.gather_update(&tree, k, &dirty);
        let _ = ws.trace_best(&tree);
    }
    soar_obs::set_tracing(false);

    // `pool.map` joins before returning and the guards above are dropped, so
    // every Begin has had its End pushed: the snapshot is at quiescence.
    let threads = soar_obs::span::snapshot();
    assert!(!threads.is_empty(), "no ring captured any spans");

    let mut names_seen = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for t in &threads {
        // The checks below assume nothing was overwritten by ring wrap; the
        // workload is sized well under the ring capacity, keep it that way.
        assert!(
            t.events.len() < RING_CAP,
            "thread {} filled its ring ({} events) — shrink the workload",
            t.tid,
            t.events.len()
        );
        let mut stack: Vec<&'static str> = Vec::new();
        let mut last_ts = 0u64;
        for e in &t.events {
            assert!(
                e.ts_ns >= last_ts,
                "thread {}: timestamps regressed at {:?}",
                t.tid,
                e.name
            );
            last_ts = e.ts_ns;
            if e.begin {
                stack.push(e.name);
            } else {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("thread {}: End({}) with no open span", t.tid, e.name)
                });
                assert_eq!(
                    open, e.name,
                    "thread {}: spans are not strictly nested",
                    t.tid
                );
            }
            names_seen.insert(e.name);
        }
        assert!(
            stack.is_empty(),
            "thread {}: spans left open at quiescence: {stack:?}",
            t.tid
        );
        total += t.events.len();
    }
    assert!(total > 0, "the solves recorded no events at all");

    // Every instrumented phase fired at least once.
    for name in [
        "ws_reset",
        "gather_level",
        "gather_update",
        "gather_stripe",
        "traceback",
    ] {
        assert!(names_seen.contains(name), "phase {name:?} never recorded");
    }
}
