//! Property tests: every `mCost` kernel is **bit-identical** to the scalar
//! reference, and the compressed arena solves identically to the full one.
//!
//! The pruned and tiled kernels claim *exactness*, not approximation: the
//! effective-width cap, the tail early-exit and the tile-skip bound only ever
//! discard candidates that provably cannot win (values are non-increasing in
//! the split index, and ties resolve to the smallest index, which is visited
//! first). These tests pin that claim across adversarial shapes — budgets that
//! straddle the f64x4 lane width and the 64-column tile width, degenerate
//! paths and stars, random trees with random loads / rates / availability —
//! by comparing whole [`GatherTables`] for equality, which covers every `X`
//! row, every `Y` row, and every recorded arg-min split.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar_core::workspace::SolverWorkspace;
use soar_core::{DpKernel, GatherTables};
use soar_topology::{builders, Tree};

/// Randomizes the DP inputs: loads everywhere (internal nodes included),
/// non-uniform rates, and a sprinkling of unavailable switches.
fn randomize(tree: &mut Tree, rng: &mut StdRng) {
    for v in 0..tree.n_switches() {
        if rng.random_bool(0.7) {
            tree.set_load(v, rng.random_range(0..100));
        }
        if rng.random_bool(0.3) {
            tree.set_available(v, false);
        }
        if rng.random_bool(0.4) {
            tree.set_rate(v, [0.25, 0.5, 1.0, 2.0, 4.0][rng.random_range(0..5usize)]);
        }
    }
}

fn gather_with(tree: &Tree, k: usize, kernel: DpKernel, compressed: bool) -> GatherTables {
    let mut ws = SolverWorkspace::new();
    ws.set_kernel(kernel);
    ws.set_compression(Some(compressed));
    let _ = ws.gather(tree, k);
    ws.into_tables()
}

/// The shapes under test. Budgets are chosen to straddle the SIMD lane width
/// (4 columns) and the tile width (64 columns): `n_i = k + 1` values of 4, 5,
/// 63, 64, 65 exercise empty remainders, 1-lane remainders, and multi-tile
/// rows with a partial trailing tile.
fn shapes(rng: &mut StdRng) -> Vec<(String, Tree)> {
    let mut shapes: Vec<(String, Tree)> = vec![
        ("path-17".into(), builders::path(17)),
        ("star-33".into(), builders::star(33)),
        ("caterpillar".into(), builders::caterpillar(9, 4)),
        ("bt-255".into(), builders::complete_binary_tree(255)),
        ("kary4-341".into(), builders::complete_kary_tree(4, 341)),
        ("fat-tree".into(), builders::two_tier_fat_tree(4, 6)),
    ];
    for (i, n) in [37usize, 120, 450].into_iter().enumerate() {
        shapes.push((format!("random-{i}"), builders::random_tree(n, rng)));
    }
    for (_, tree) in &mut shapes {
        randomize(tree, rng);
    }
    shapes
}

#[test]
fn pruned_and_tiled_kernels_are_bit_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0x50AB);
    for (name, tree) in shapes(&mut rng) {
        for k in [0usize, 3, 4, 16, 63, 64] {
            let reference = gather_with(&tree, k, DpKernel::Scalar, false);
            for kernel in [DpKernel::Pruned, DpKernel::Tiled, DpKernel::Auto] {
                let candidate = gather_with(&tree, k, kernel, false);
                assert_eq!(
                    candidate,
                    reference,
                    "kernel {} diverged from scalar on {name} at k = {k}",
                    kernel.name()
                );
            }
        }
    }
}

#[test]
fn compressed_arena_solves_and_y_values_match_the_full_arena() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for (name, tree) in shapes(&mut rng) {
        for k in [2usize, 7, 65] {
            let mut full_ws = SolverWorkspace::new();
            full_ws.set_compression(Some(false));
            let full_solution = full_ws.solve(&tree, k);

            let mut comp_ws = SolverWorkspace::new();
            comp_ws.set_compression(Some(true));
            let comp_solution = comp_ws.solve(&tree, k);

            // Compressed tables are structurally smaller, so compare the
            // *solve*: identical cost, identical coloring.
            assert_eq!(
                comp_solution, full_solution,
                "compressed solve diverged on {name} at k = {k}"
            );

            // And the on-demand Y recomputation must be bit-identical to the
            // rows the full arena stored — spot-check every elided node.
            let full = full_ws.tables();
            let comp = comp_ws.tables();
            assert!(comp.is_compressed());
            for v in 0..tree.n_switches() {
                if !comp.y_elided(v) {
                    continue;
                }
                for l in 0..=tree.dist_to_dest(v) {
                    for i in 0..=k {
                        for color in [soar_core::Color::Blue, soar_core::Color::Red] {
                            let stored = full.y(v, l, i, color);
                            let recomputed = comp.y_value(&tree, v, l, i, color);
                            assert!(
                                stored.to_bits() == recomputed.to_bits(),
                                "y_value diverged on {name} at k = {k}: \
                                 node {v}, l = {l}, i = {i}, {color:?}: \
                                 stored {stored}, recomputed {recomputed}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn incremental_updates_preserve_kernel_identity() {
    // Partial regathers run the same kernel as full passes; a dirty-path
    // refill must stay bit-identical to a from-scratch gather under every
    // kernel (this is what keeps soar-online exact when a kernel is forced).
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut tree = builders::complete_kary_tree(3, 121);
    randomize(&mut tree, &mut rng);
    for kernel in [DpKernel::Scalar, DpKernel::Pruned, DpKernel::Tiled] {
        let mut ws = SolverWorkspace::new();
        ws.set_kernel(kernel);
        ws.set_compression(Some(false));
        let _ = ws.gather(&tree, 6);
        // Touch one leaf; its root path is the ancestor-closed dirty set.
        let leaf = tree.leaves().last().unwrap();
        tree.set_load(leaf, 913);
        let mut dirty = vec![leaf];
        let mut v = leaf;
        while let Some(p) = tree.parent(v) {
            dirty.push(p);
            v = p;
        }
        let updated = ws.gather_update(&tree, 6, &dirty);
        let fresh = gather_with(&tree, 6, kernel, false);
        assert_eq!(
            *updated,
            fresh,
            "partial regather diverged under kernel {}",
            kernel.name()
        );
        tree.set_load(leaf, 0); // reset so every kernel sees the same sequence
    }
}
