//! The 1M-switch end-to-end acceptance test behind the `scale-smoke` CI job.
//!
//! Ignored by default (it gathers a million-switch arena twice and wants a
//! release build); run explicitly with
//!
//! ```text
//! cargo test --release -p soar-core --test scale_1m -- --ignored
//! ```
//!
//! It pins the large-tree contract end to end: a complete 16-ary tree over
//! 10⁶ switches lays out a *compressed* arena (automatic at this size),
//! solves gather + color, and a warm second solve is **allocation-free** and
//! agrees bit-for-bit with the first.

use soar_core::workspace::SolverWorkspace;
use soar_topology::builders;

#[test]
#[ignore = "million-switch end-to-end run; release builds only (scale-smoke CI)"]
fn one_million_switch_tree_solves_warm_end_to_end() {
    let mut tree = builders::complete_kary_tree(16, 1_000_000);
    for (i, v) in tree.leaves().collect::<Vec<_>>().into_iter().enumerate() {
        tree.set_load(v, (i % 23 + 1) as u64);
    }
    let mut ws = SolverWorkspace::new();
    let cold = ws.solve(&tree, 16);
    assert!(ws.tables().is_compressed(), "1M switches must compress");
    assert!(cold.cost.is_finite() && cold.cost > 0.0);
    assert!(cold.blue_used > 0 && cold.blue_used <= 16);

    let warm = ws.solve(&tree, 16);
    assert_eq!(warm, cold, "warm replay must be bit-identical");
    assert_eq!(ws.last_alloc_events(), 0, "warm 1M solve must not allocate");

    // The compressed arena is the point: Y blocks exist only for the ~6.6%
    // of nodes with 2+ children, so the footprint stays far below the
    // full-arena layout (which stores X + 2 Y cells per table cell).
    let bytes = ws.tables().memory_bytes();
    assert!(
        bytes < 2 * ws.tables().table_cells() * 8,
        "compressed arena ({bytes} B) should undercut even 2 cells/table-cell"
    );
}
