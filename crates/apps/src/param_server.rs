//! The **PS (parameter server)** use case of Sec. 5.3: distributed gradient
//! aggregation for machine-learning training.
//!
//! Worker servers train locally and push gradient updates towards a parameter server
//! (the destination `d`). With a dropout rate of 0.5 over a 10 000-dimensional feature
//! space (the paper's configuration), each worker's update touches a random ≈half of
//! the features; an aggregation switch sums gradients element-wise, so the merged
//! update covers the *union* of the touched features. Because two random halves
//! already cover ≈75 % of the space, message sizes saturate quickly: aggregated
//! messages are barely larger than a single worker's, which is why the PS byte
//! complexity closely tracks the utilization complexity in Fig. 8.
//!
//! The paper explicitly models only the messages (not the neural network itself); this
//! module does the same. Gradients are represented by the *set* of touched feature
//! indices (a fixed-size bitset); actual float values are irrelevant to byte counts
//! beyond a constant per-entry size.

use rand::Rng;
use soar_reduce::bytes::AggregationModel;
use soar_topology::NodeId;

/// Default number of features (the paper uses a 10 K feature space).
pub const DEFAULT_FEATURES: usize = 10_000;
/// Default dropout rate (the paper uses 0.5).
pub const DEFAULT_DROPOUT: f64 = 0.5;
/// Default bytes per (index, value) pair in the sparse encoding.
pub const DEFAULT_BYTES_PER_SPARSE_ENTRY: u64 = 8;
/// Default bytes per value in the dense encoding.
pub const DEFAULT_BYTES_PER_DENSE_VALUE: u64 = 4;

/// A sparse gradient: the set of feature indices a message carries, as a bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradientSketch {
    bits: Vec<u64>,
    features: usize,
}

impl GradientSketch {
    fn empty(features: usize) -> Self {
        GradientSketch {
            bits: vec![0u64; features.div_ceil(64)],
            features,
        }
    }

    fn set(&mut self, index: usize) {
        self.bits[index / 64] |= 1u64 << (index % 64);
    }

    /// Number of features this gradient touches.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Number of features in the full space.
    pub fn features(&self) -> usize {
        self.features
    }

    fn union_in_place(&mut self, other: &GradientSketch) {
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }
}

/// The parameter-server aggregation model.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterServerModel {
    features: usize,
    dropout: f64,
    bytes_per_sparse_entry: u64,
    bytes_per_dense_value: u64,
}

impl ParameterServerModel {
    /// Builds a parameter-server model with the given feature-space size and dropout.
    ///
    /// # Panics
    ///
    /// Panics if `features == 0` or `dropout` is outside `[0, 1]`.
    pub fn new(features: usize, dropout: f64) -> Self {
        assert!(features > 0, "the feature space must be non-empty");
        assert!(
            (0.0..=1.0).contains(&dropout),
            "dropout must be a probability"
        );
        ParameterServerModel {
            features,
            dropout,
            bytes_per_sparse_entry: DEFAULT_BYTES_PER_SPARSE_ENTRY,
            bytes_per_dense_value: DEFAULT_BYTES_PER_DENSE_VALUE,
        }
    }

    /// The paper's configuration: 10 000 features, dropout 0.5.
    pub fn paper_default() -> Self {
        ParameterServerModel::new(DEFAULT_FEATURES, DEFAULT_DROPOUT)
    }

    /// Overrides the sparse / dense encoding sizes.
    pub fn with_encoding(
        mut self,
        bytes_per_sparse_entry: u64,
        bytes_per_dense_value: u64,
    ) -> Self {
        self.bytes_per_sparse_entry = bytes_per_sparse_entry;
        self.bytes_per_dense_value = bytes_per_dense_value;
        self
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Dropout rate.
    pub fn dropout(&self) -> f64 {
        self.dropout
    }

    /// Size of a fully dense gradient message.
    pub fn dense_bytes(&self) -> u64 {
        self.features as u64 * self.bytes_per_dense_value
    }
}

impl AggregationModel for ParameterServerModel {
    type Payload = GradientSketch;

    fn worker_payload<R: Rng + ?Sized>(
        &self,
        _switch: NodeId,
        _worker_index: u64,
        rng: &mut R,
    ) -> GradientSketch {
        let mut sketch = GradientSketch::empty(self.features);
        let keep = 1.0 - self.dropout;
        for index in 0..self.features {
            if rng.random::<f64>() < keep {
                sketch.set(index);
            }
        }
        sketch
    }

    fn merge(&self, acc: &mut GradientSketch, other: &GradientSketch) {
        acc.union_in_place(other);
    }

    fn size_bytes(&self, payload: &GradientSketch) -> u64 {
        // A message is encoded sparsely (index + value per touched feature) or densely
        // (one value per feature), whichever is smaller — standard practice for
        // gradient exchange.
        let sparse = payload.count() as u64 * self.bytes_per_sparse_entry;
        sparse.min(self.dense_bytes())
    }

    fn empty(&self) -> GradientSketch {
        GradientSketch::empty(self.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_reduce::bytes::byte_complexity;
    use soar_reduce::Coloring;
    use soar_topology::builders;

    #[test]
    fn worker_gradients_respect_the_dropout_rate() {
        let model = ParameterServerModel::new(10_000, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let sketch = model.worker_payload(0, 0, &mut rng);
        let touched = sketch.count() as f64;
        assert!(
            (touched - 5_000.0).abs() < 300.0,
            "≈half the features should be touched, got {touched}"
        );
        assert_eq!(sketch.features(), 10_000);
    }

    #[test]
    fn merging_unions_the_feature_sets() {
        let model = ParameterServerModel::new(1_000, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = model.worker_payload(0, 0, &mut rng);
        let b = model.worker_payload(0, 1, &mut rng);
        let before = a.count();
        model.merge(&mut a, &b);
        assert!(a.count() >= before);
        assert!(a.count() >= b.count());
        assert!(a.count() <= 1_000);
        // Two random halves cover roughly three quarters of the space.
        assert!(a.count() as f64 > 0.65 * 1_000.0);
    }

    #[test]
    fn message_sizes_are_capped_by_the_dense_encoding() {
        let model = ParameterServerModel::new(1_000, 0.0); // no dropout: all features
        let mut rng = StdRng::seed_from_u64(2);
        let sketch = model.worker_payload(0, 0, &mut rng);
        assert_eq!(sketch.count(), 1_000);
        assert_eq!(model.size_bytes(&sketch), model.dense_bytes());
        assert_eq!(model.size_bytes(&model.empty()), 0);
    }

    #[test]
    fn aggregated_ps_messages_grow_only_mildly() {
        // The property behind Fig. 8: PS byte complexity tracks utilization because
        // message sizes barely grow when aggregated.
        let mut tree = builders::complete_binary_tree(7);
        for leaf in [3usize, 4, 5, 6] {
            tree.set_load(leaf, 4);
        }
        let model = ParameterServerModel::new(2_000, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let report = byte_complexity(
            &tree,
            &Coloring::all_blue(tree.n_switches()),
            &model,
            &mut rng,
        );
        let leaf_bytes = report.per_edge_bytes[3] as f64;
        let root_bytes = report.per_edge_bytes[0] as f64;
        assert!(
            root_bytes <= 2.0 * leaf_bytes,
            "PS aggregates must not balloon"
        );
    }

    #[test]
    fn paper_default_parameters() {
        let model = ParameterServerModel::paper_default();
        assert_eq!(model.features(), 10_000);
        assert_eq!(model.dropout(), 0.5);
        assert_eq!(model.dense_bytes(), 40_000);
        let custom = model.clone().with_encoding(16, 8);
        assert_eq!(custom.dense_bytes(), 80_000);
    }

    #[test]
    #[should_panic]
    fn invalid_dropout_is_rejected() {
        let _ = ParameterServerModel::new(10, 1.5);
    }

    #[test]
    #[should_panic]
    fn empty_feature_space_is_rejected() {
        let _ = ParameterServerModel::new(0, 0.5);
    }
}
