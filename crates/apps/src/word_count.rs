//! The **WC (word count)** use case of Sec. 5.3: MapReduce word counting.
//!
//! Every worker holds a shard of a text corpus and emits a partial dictionary mapping
//! each distinct word it saw to its count. A red switch forwards partial dictionaries
//! untouched; a blue switch (or the destination) merges them by summing counts per
//! word. The wire size of a message is therefore proportional to the number of
//! *distinct* words it carries — which grows as dictionaries are merged up the tree,
//! the effect responsible for the diminished byte-complexity savings of WC compared to
//! its utilization savings (Fig. 8b).
//!
//! ## Corpus substitution
//!
//! The paper uses a Wikipedia dump with ≈54 M words of which ≈800 K are distinct. That
//! artifact is replaced here by a synthetic corpus whose word ids follow a Zipf
//! distribution (the classical model of natural-language word frequencies): the model
//! draws `words_per_worker` word ids per worker from `Zipf(vocabulary, s)`. Byte
//! complexity only depends on how many distinct keys each partial dictionary holds and
//! how those key sets overlap when merged — both of which are governed by the
//! heavy-tailed key-frequency distribution the Zipf corpus reproduces.

use crate::zipf::Zipf;
use rand::Rng;
use soar_reduce::bytes::AggregationModel;
use soar_topology::NodeId;
use std::collections::HashMap;

/// Default average encoded size of one dictionary key (a word), in bytes.
pub const DEFAULT_BYTES_PER_WORD: u64 = 8;
/// Default encoded size of one count value, in bytes.
pub const DEFAULT_BYTES_PER_COUNT: u64 = 8;

/// The word-count aggregation model.
#[derive(Debug, Clone, PartialEq)]
pub struct WordCountModel {
    vocabulary: usize,
    words_per_worker: u64,
    zipf_exponent: f64,
    bytes_per_word: u64,
    bytes_per_count: u64,
    zipf: Zipf,
}

impl WordCountModel {
    /// Builds a word-count model.
    ///
    /// * `vocabulary` — number of distinct words in the corpus;
    /// * `words_per_worker` — how many words each worker's shard contains;
    /// * `zipf_exponent` — the Zipf exponent `s` of the word-frequency distribution
    ///   (≈1.0 for natural language).
    pub fn new(vocabulary: usize, words_per_worker: u64, zipf_exponent: f64) -> Self {
        WordCountModel {
            vocabulary,
            words_per_worker,
            zipf_exponent,
            bytes_per_word: DEFAULT_BYTES_PER_WORD,
            bytes_per_count: DEFAULT_BYTES_PER_COUNT,
            zipf: Zipf::new(vocabulary, zipf_exponent),
        }
    }

    /// Overrides the per-key and per-count wire sizes.
    pub fn with_encoding(mut self, bytes_per_word: u64, bytes_per_count: u64) -> Self {
        self.bytes_per_word = bytes_per_word;
        self.bytes_per_count = bytes_per_count;
        self
    }

    /// A laptop-friendly default: 80 K vocabulary, 5 000 words per worker, `s = 1.0` —
    /// the same Zipf shape as the paper's corpus at roughly 1/10 the vocabulary.
    pub fn scaled_default() -> Self {
        WordCountModel::new(80_000, 5_000, 1.0)
    }

    /// The paper's corpus scale: an 800 K-word vocabulary and 54 M total words split
    /// evenly across `total_workers` workers.
    pub fn paper_scale(total_workers: u64) -> Self {
        let total_words: u64 = 54_000_000;
        let per_worker = (total_words / total_workers.max(1)).max(1);
        WordCountModel::new(800_000, per_worker, 1.0)
    }

    /// Number of distinct words in the corpus.
    pub fn vocabulary(&self) -> usize {
        self.vocabulary
    }

    /// Words per worker shard.
    pub fn words_per_worker(&self) -> u64 {
        self.words_per_worker
    }

    /// Expected number of distinct words in a single worker's dictionary.
    pub fn expected_distinct_per_worker(&self) -> f64 {
        self.zipf.expected_distinct(self.words_per_worker)
    }
}

impl AggregationModel for WordCountModel {
    /// A partial dictionary: word id → occurrence count.
    type Payload = HashMap<u32, u64>;

    fn worker_payload<R: Rng + ?Sized>(
        &self,
        _switch: NodeId,
        _worker_index: u64,
        rng: &mut R,
    ) -> Self::Payload {
        let mut dict = HashMap::new();
        for _ in 0..self.words_per_worker {
            let word = self.zipf.sample(rng) as u32;
            *dict.entry(word).or_insert(0) += 1;
        }
        dict
    }

    fn merge(&self, acc: &mut Self::Payload, other: &Self::Payload) {
        for (&word, &count) in other {
            *acc.entry(word).or_insert(0) += count;
        }
    }

    fn size_bytes(&self, payload: &Self::Payload) -> u64 {
        payload.len() as u64 * (self.bytes_per_word + self.bytes_per_count)
    }

    fn empty(&self) -> Self::Payload {
        HashMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_reduce::bytes::byte_complexity;
    use soar_reduce::Coloring;
    use soar_topology::builders;

    #[test]
    fn worker_dictionaries_have_plausible_sizes() {
        let model = WordCountModel::new(10_000, 2_000, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let dict = model.worker_payload(0, 0, &mut rng);
        let total: u64 = dict.values().sum();
        assert_eq!(total, 2_000, "every sampled word must be counted");
        let distinct = dict.len() as f64;
        let expected = model.expected_distinct_per_worker();
        assert!(
            (distinct - expected).abs() < expected * 0.25,
            "observed {distinct} distinct words, expected ≈{expected}"
        );
        assert!(distinct < 2_000.0, "Zipf sampling must produce repeats");
    }

    #[test]
    fn merge_sums_counts_and_unions_keys() {
        let model = WordCountModel::new(100, 10, 1.0);
        let mut a: HashMap<u32, u64> = [(1, 2), (2, 1)].into_iter().collect();
        let b: HashMap<u32, u64> = [(2, 3), (7, 5)].into_iter().collect();
        model.merge(&mut a, &b);
        assert_eq!(a.get(&1), Some(&2));
        assert_eq!(a.get(&2), Some(&4));
        assert_eq!(a.get(&7), Some(&5));
        assert_eq!(a.len(), 3);
        assert_eq!(model.size_bytes(&a), 3 * 16);
        assert_eq!(model.size_bytes(&model.empty()), 0);
    }

    #[test]
    fn encoding_override_changes_sizes() {
        let model = WordCountModel::new(100, 10, 1.0).with_encoding(4, 2);
        let dict: HashMap<u32, u64> = [(1, 1), (2, 1)].into_iter().collect();
        assert_eq!(model.size_bytes(&dict), 12);
    }

    #[test]
    fn aggregated_messages_grow_with_subtree_size() {
        // A blue switch high in the tree merges many shards: its single message holds
        // more distinct keys than any single worker's dictionary.
        let mut tree = builders::complete_binary_tree(7);
        for leaf in [3usize, 4, 5, 6] {
            tree.set_load(leaf, 3);
        }
        let model = WordCountModel::new(50_000, 2_000, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let report = byte_complexity(
            &tree,
            &Coloring::all_blue(tree.n_switches()),
            &model,
            &mut rng,
        );
        // Root aggregate (one message) must be larger than a leaf aggregate (also one
        // message) because it has seen 4x the shards.
        assert!(report.per_edge_bytes[0] > report.per_edge_bytes[3]);
        assert_eq!(report.per_edge_messages[0], 1);
    }

    #[test]
    fn paper_scale_splits_the_corpus_across_workers() {
        let model = WordCountModel::paper_scale(640);
        assert_eq!(model.vocabulary(), 800_000);
        assert_eq!(model.words_per_worker(), 54_000_000 / 640);
        let tiny = WordCountModel::paper_scale(0);
        assert_eq!(tiny.words_per_worker(), 54_000_000);
    }
}
