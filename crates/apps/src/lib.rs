//! # soar-apps
//!
//! Application/workload models for the two use cases evaluated in Sec. 5.3 of the SOAR
//! paper, expressed as [`soar_reduce::bytes::AggregationModel`]s so that the byte
//! complexity of any blue-node placement can be measured:
//!
//! * **WC — word count** ([`word_count::WordCountModel`]): a MapReduce word-count job.
//!   Each worker holds a shard of a text corpus and reports a partial dictionary
//!   `{word → count}`; aggregation merges dictionaries, so message sizes *grow* with
//!   the number of distinct keys seen below the aggregation point. The paper uses a
//!   Wikipedia dump (≈54 M words, ≈800 K distinct); since that artifact is not
//!   redistributable here, the corpus is replaced by a synthetic Zipf-distributed
//!   stream with matching shape parameters (see `DESIGN.md` for the substitution
//!   rationale).
//! * **PS — parameter server** ([`param_server::ParameterServerModel`]): distributed
//!   gradient aggregation over a 10 000-dimensional feature space with a 0.5 dropout
//!   rate, exactly as modelled by the paper (which also does not run a real neural
//!   network and only models the gradient messages). Each worker reports a sparse
//!   gradient over roughly half the features; aggregation unions the index sets, so
//!   messages saturate quickly and sizes vary only mildly across the tree.
//!
//! The [`UseCase`] enum packages both models (with the paper's default parameters)
//! behind one object for the evaluation harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod param_server;
pub mod word_count;
pub mod zipf;

pub use param_server::ParameterServerModel;
pub use word_count::WordCountModel;

use rand::Rng;
use soar_reduce::bytes::{byte_complexity, ByteReport};
use soar_reduce::Coloring;
use soar_topology::Tree;

/// The two application use cases of Sec. 5.3, with the paper's default parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum UseCase {
    /// MapReduce word count over a (synthetic) heavy-tailed corpus.
    WordCount(WordCountModel),
    /// Distributed ML gradient aggregation through a parameter server.
    ParameterServer(ParameterServerModel),
}

impl UseCase {
    /// The word-count use case at a laptop-friendly scale (a scaled-down corpus with
    /// the same Zipf shape as the paper's Wikipedia dump).
    pub fn word_count_default() -> Self {
        UseCase::WordCount(WordCountModel::scaled_default())
    }

    /// The word-count use case at the paper's full corpus scale (54 M words, 800 K
    /// vocabulary). Noticeably slower; intended for the figure-regeneration binaries.
    pub fn word_count_paper_scale(total_workers: u64) -> Self {
        UseCase::WordCount(WordCountModel::paper_scale(total_workers))
    }

    /// The parameter-server use case with the paper's parameters (10 K features,
    /// 0.5 dropout).
    pub fn parameter_server_default() -> Self {
        UseCase::ParameterServer(ParameterServerModel::paper_default())
    }

    /// A short label for tables and plots.
    pub fn label(&self) -> &'static str {
        match self {
            UseCase::WordCount(_) => "WC",
            UseCase::ParameterServer(_) => "PS",
        }
    }

    /// Evaluates the byte complexity of a coloring under this use case.
    pub fn byte_report<R: Rng + ?Sized>(
        &self,
        tree: &Tree,
        coloring: &Coloring,
        rng: &mut R,
    ) -> ByteReport {
        match self {
            UseCase::WordCount(model) => byte_complexity(tree, coloring, model, rng),
            UseCase::ParameterServer(model) => byte_complexity(tree, coloring, model, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;
    use soar_topology::load::LoadSpec;

    fn small_loaded_tree() -> Tree {
        let mut tree = builders::complete_binary_tree_bt(16);
        let mut rng = StdRng::seed_from_u64(1);
        tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng);
        tree
    }

    #[test]
    fn labels() {
        assert_eq!(UseCase::word_count_default().label(), "WC");
        assert_eq!(UseCase::parameter_server_default().label(), "PS");
    }

    #[test]
    fn byte_reports_are_produced_for_both_use_cases() {
        let tree = small_loaded_tree();
        let coloring = Coloring::all_blue(tree.n_switches());
        for use_case in [
            UseCase::word_count_default(),
            UseCase::parameter_server_default(),
        ] {
            let mut rng = StdRng::seed_from_u64(7);
            let report = use_case.byte_report(&tree, &coloring, &mut rng);
            assert!(
                report.total_bytes > 0,
                "{} produced no bytes",
                use_case.label()
            );
            assert_eq!(
                report.total_messages,
                soar_reduce::cost::message_complexity(&tree, &coloring)
            );
        }
    }

    #[test]
    fn aggregation_reduces_bytes_for_both_use_cases() {
        let tree = small_loaded_tree();
        let all_red = Coloring::all_red(tree.n_switches());
        let all_blue = Coloring::all_blue(tree.n_switches());
        for use_case in [
            UseCase::word_count_default(),
            UseCase::parameter_server_default(),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let red = use_case.byte_report(&tree, &all_red, &mut rng);
            let mut rng = StdRng::seed_from_u64(3);
            let blue = use_case.byte_report(&tree, &all_blue, &mut rng);
            assert!(
                blue.total_bytes < red.total_bytes,
                "{}: all-blue ({}) should beat all-red ({})",
                use_case.label(),
                blue.total_bytes,
                red.total_bytes
            );
        }
    }
}
