//! A truncated Zipf (discrete power-law) sampler over `{0, ..., n-1}`.
//!
//! Natural-language word frequencies famously follow Zipf's law, so the synthetic
//! corpus that stands in for the paper's Wikipedia dump draws word ids from a Zipf
//! distribution: `P(rank) ∝ 1 / rank^s` with exponent `s ≈ 1`. The sampler
//! precomputes the cumulative distribution once and answers each draw with a binary
//! search, so sampling millions of words stays cheap.

use rand::Rng;

/// A Zipf distribution over ranks `0 ..= n-1` (rank 0 being the most frequent item).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Builds a Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not a finite non-negative number.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for value in &mut cdf {
            *value /= total;
        }
        Zipf { cdf, exponent: s }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `0 ..= len()-1`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index whose cdf value is >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Expected number of *distinct* items observed in `draws` independent samples:
    /// `Σ_i (1 - (1 - p_i)^draws)`. Used to size word-count dictionaries analytically in
    /// tests and documentation.
    pub fn expected_distinct(&self, draws: u64) -> f64 {
        self.cdf
            .iter()
            .scan(0.0, |prev, &c| {
                let p = c - *prev;
                *prev = c;
                Some(1.0 - (1.0 - p).powf(draws as f64))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(1000, 1.0);
        let total: f64 = (0..z.len()).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..z.len() {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
        assert_eq!(z.len(), 1000);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 1.0);
    }

    #[test]
    fn samples_stay_in_range_and_favor_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        assert!(
            counts[0] > counts[50] && counts[0] > counts[99],
            "rank 0 must dominate the tail"
        );
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_distinct_is_sane() {
        let z = Zipf::new(1000, 1.0);
        let few = z.expected_distinct(10);
        let many = z.expected_distinct(10_000);
        assert!(few < many);
        assert!((1.0..=10.0).contains(&few));
        assert!(many <= 1000.0);
    }

    #[test]
    #[should_panic]
    fn empty_support_is_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_exponent_is_rejected() {
        let _ = Zipf::new(10, -1.0);
    }
}
