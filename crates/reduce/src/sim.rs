//! A discrete-event, packet-level simulator of the Reduce operation (Algorithm 1).
//!
//! The closed-form accounting in [`crate::cost`] counts messages combinatorially. This
//! simulator instead *executes* the Reduce message by message over the tree:
//!
//! * every worker's message appears at its switch at time 0;
//! * a **red** switch forwards each message as soon as it holds it (store-and-forward);
//! * a **blue** switch waits until it has received everything it expects from its
//!   children and its local workers, then emits a single aggregate message;
//! * every link serializes messages: a link with rate `ω` (messages/second) transmits
//!   one message in `ρ = 1/ω` seconds and is busy for that long, so messages queue
//!   behind each other on a busy link.
//!
//! The simulator therefore reproduces the paper's utilization complexity (the total
//! busy time summed over links equals `φ`) **and** produces quantities the closed form
//! cannot: the completion time of the Reduce (a latency proxy) and the busy time of the
//! most-loaded link (a bottleneck proxy) — the alternative objectives discussed in
//! Sec. 8 of the paper.

use crate::{cost, Coloring};
use soar_topology::{NodeId, Tree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of simulating one Reduce operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of messages that crossed the up-link of every switch.
    pub per_edge_messages: Vec<u64>,
    /// Total busy time of every up-link (`messages · ρ`, since transmissions serialize).
    pub per_edge_busy_time: Vec<f64>,
    /// Sum of the per-link busy times — equal to the utilization complexity `φ`.
    pub total_busy_time: f64,
    /// Time at which the destination `d` has received its last message.
    pub completion_time: f64,
    /// The largest per-link busy time (the bottleneck link).
    pub max_link_busy_time: f64,
    /// Number of messages delivered to the destination.
    pub messages_at_destination: u64,
}

/// An event: a message finishes crossing the up-link of `from` at `time` and is
/// delivered to `from`'s parent (or to the destination when `from` is the root).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Delivery {
    time: f64,
    from: NodeId,
    seq: u64,
}

impl Eq for Delivery {}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (BinaryHeap is a max-heap, so reverse), tie-broken by
        // sequence number for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-switch simulation state.
struct SwitchState {
    /// Messages this switch still expects before it may aggregate (blue switches only).
    expected_remaining: u64,
    /// Whether the blue switch has already emitted its aggregate.
    aggregated: bool,
    /// Next instant at which this switch's up-link is free.
    link_free_at: f64,
}

/// The simulator. Construct once per `(tree, coloring)` pair and call [`Simulator::run`].
pub struct Simulator<'a> {
    tree: &'a Tree,
    coloring: &'a Coloring,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given instance.
    ///
    /// # Panics
    ///
    /// Panics if the coloring does not cover exactly the tree's switches.
    pub fn new(tree: &'a Tree, coloring: &'a Coloring) -> Self {
        assert_eq!(
            coloring.len(),
            tree.n_switches(),
            "coloring must cover the tree"
        );
        Self { tree, coloring }
    }

    /// Runs the Reduce to completion and reports the outcome.
    pub fn run(&self) -> SimReport {
        let tree = self.tree;
        let coloring = self.coloring;
        let n = tree.n_switches();

        // Expected incoming messages per switch = what each child will forward on its
        // up-link; derived from the closed-form counts (the dataplane crate re-derives
        // this independently via per-child termination markers).
        let static_counts = cost::msg_counts(tree, coloring);
        let expected_in: Vec<u64> = (0..n)
            .map(|v| {
                tree.children(v)
                    .iter()
                    .map(|&c| static_counts[c])
                    .sum::<u64>()
            })
            .collect();

        let mut state: Vec<SwitchState> = (0..n)
            .map(|v| SwitchState {
                expected_remaining: expected_in[v],
                aggregated: false,
                link_free_at: 0.0,
            })
            .collect();

        let mut per_edge_messages = vec![0u64; n];
        let mut per_edge_busy_time = vec![0.0f64; n];
        let mut events: BinaryHeap<Delivery> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut completion_time: f64 = 0.0;
        let mut messages_at_destination: u64 = 0;

        // Local closure: switch `v` sends one message upward at local time `t`.
        let mut send_up = |v: NodeId,
                           t: f64,
                           state: &mut Vec<SwitchState>,
                           events: &mut BinaryHeap<Delivery>,
                           per_edge_messages: &mut Vec<u64>,
                           per_edge_busy_time: &mut Vec<f64>| {
            let rho = self.tree.rho(v);
            let start = state[v].link_free_at.max(t);
            let finish = start + rho;
            state[v].link_free_at = finish;
            per_edge_messages[v] += 1;
            per_edge_busy_time[v] += rho;
            seq += 1;
            events.push(Delivery {
                time: finish,
                from: v,
                seq,
            });
        };

        // Time 0: workers hand their messages to their switch.
        for v in 0..n {
            let load = tree.load(v);
            if coloring.is_blue(v) {
                // A blue switch counts its own workers as already received.
                if state[v].expected_remaining == 0 && load == 0 && !state[v].aggregated {
                    // Nothing to wait for: emit the (empty) aggregate immediately,
                    // matching the single-report semantics of the cost model.
                    state[v].aggregated = true;
                    send_up(
                        v,
                        0.0,
                        &mut state,
                        &mut events,
                        &mut per_edge_messages,
                        &mut per_edge_busy_time,
                    );
                } else if state[v].expected_remaining == 0 && !state[v].aggregated {
                    state[v].aggregated = true;
                    send_up(
                        v,
                        0.0,
                        &mut state,
                        &mut events,
                        &mut per_edge_messages,
                        &mut per_edge_busy_time,
                    );
                }
            } else {
                for _ in 0..load {
                    send_up(
                        v,
                        0.0,
                        &mut state,
                        &mut events,
                        &mut per_edge_messages,
                        &mut per_edge_busy_time,
                    );
                }
            }
        }

        // Main event loop.
        while let Some(Delivery { time, from, .. }) = events.pop() {
            match tree.parent(from) {
                None => {
                    // Delivered to the destination d.
                    messages_at_destination += 1;
                    completion_time = completion_time.max(time);
                }
                Some(p) => {
                    if coloring.is_blue(p) {
                        state[p].expected_remaining = state[p].expected_remaining.saturating_sub(1);
                        if state[p].expected_remaining == 0 && !state[p].aggregated {
                            state[p].aggregated = true;
                            send_up(
                                p,
                                time,
                                &mut state,
                                &mut events,
                                &mut per_edge_messages,
                                &mut per_edge_busy_time,
                            );
                        }
                    } else {
                        // Red switch: store-and-forward immediately.
                        send_up(
                            p,
                            time,
                            &mut state,
                            &mut events,
                            &mut per_edge_messages,
                            &mut per_edge_busy_time,
                        );
                    }
                }
            }
        }

        let total_busy_time: f64 = per_edge_busy_time.iter().sum();
        let max_link_busy_time = per_edge_busy_time.iter().cloned().fold(0.0, f64::max);
        SimReport {
            per_edge_messages,
            per_edge_busy_time,
            total_busy_time,
            completion_time,
            max_link_busy_time,
            messages_at_destination,
        }
    }
}

/// Convenience wrapper: simulate one Reduce and return the report.
pub fn simulate(tree: &Tree, coloring: &Coloring) -> SimReport {
    Simulator::new(tree, coloring).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::{builders, Tree};

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn simulation_reproduces_message_counts_and_phi() {
        let t = fig2_tree();
        for blues in [vec![], vec![0], vec![4, 2], vec![1, 2], (0..7).collect()] {
            let c = Coloring::from_blue_nodes(7, blues).unwrap();
            let report = simulate(&t, &c);
            assert_eq!(report.per_edge_messages, cost::msg_counts(&t, &c));
            assert!((report.total_busy_time - cost::phi(&t, &c)).abs() < 1e-9);
        }
    }

    #[test]
    fn simulation_with_heterogeneous_rates() {
        let mut t = fig2_tree();
        t.apply_rates(&soar_topology::rates::RateScheme::paper_exponential());
        let c = Coloring::from_blue_nodes(7, [1]).unwrap();
        let report = simulate(&t, &c);
        assert!((report.total_busy_time - cost::phi(&t, &c)).abs() < 1e-9);
        assert!(report.completion_time > 0.0);
    }

    #[test]
    fn all_blue_completion_is_no_earlier_than_deepest_path() {
        let t = fig2_tree();
        let c = Coloring::all_blue(7);
        let report = simulate(&t, &c);
        // Each blue switch forwards exactly one message; the destination receives one.
        assert_eq!(report.messages_at_destination, 1);
        // A message must traverse at least 3 unit-rate hops from leaves to d.
        assert!(report.completion_time >= 3.0 - 1e-9);
    }

    #[test]
    fn all_red_queueing_delays_completion() {
        let t = fig2_tree();
        let red = simulate(&t, &Coloring::all_red(7));
        let blue = simulate(&t, &Coloring::all_blue(7));
        // 17 messages serialize over the (r, d) link under all-red: completion is at
        // least 17 time units, far later than the aggregated variant.
        assert!(red.completion_time >= 17.0 - 1e-9);
        assert!(blue.completion_time < red.completion_time);
        assert_eq!(red.messages_at_destination, 17);
    }

    #[test]
    fn bottleneck_link_matches_max_utilization() {
        let t = fig2_tree();
        let c = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        let report = simulate(&t, &c);
        let expected = cost::evaluate(&t, &c).max_link_utilization;
        assert!((report.max_link_busy_time - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_produces_no_traffic_under_all_red() {
        let t = builders::complete_binary_tree(7);
        let report = simulate(&t, &Coloring::all_red(7));
        assert_eq!(report.messages_at_destination, 0);
        assert_eq!(report.total_busy_time, 0.0);
        assert_eq!(report.completion_time, 0.0);
    }

    #[test]
    fn blue_switch_with_no_input_emits_empty_aggregate() {
        let mut t = builders::star(3);
        t.set_load(2, 1);
        let c = Coloring::from_blue_nodes(3, [1]).unwrap();
        let report = simulate(&t, &c);
        assert_eq!(report.per_edge_messages[1], 1);
        assert_eq!(report.messages_at_destination, 2);
    }

    #[test]
    fn deep_chain_latency_accumulates() {
        let mut t = builders::path(5);
        t.set_load(4, 1);
        let report = simulate(&t, &Coloring::all_red(5));
        // One message traverses 5 switch up-links, each taking 1 time unit.
        assert!((report.completion_time - 5.0).abs() < 1e-9);
        assert_eq!(report.per_edge_messages, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "coloring must cover the tree")]
    fn mismatched_coloring_panics() {
        let t = fig2_tree();
        let c = Coloring::all_red(3);
        let _ = Simulator::new(&t, &c);
    }
}
