//! # soar-reduce
//!
//! The Reduce-operation cost model of the SOAR paper (CoNEXT 2021), built on top of
//! [`soar_topology`].
//!
//! Given an aggregation tree `T`, a load `L` and a set of aggregation (blue) switches
//! `U`, the paper's Algorithm 1 performs a Reduce: every worker sends one message
//! towards the destination `d`; a **red** (non-aggregating) switch forwards every
//! message it receives, while a **blue** (aggregating) switch collapses all messages
//! arriving from its subtree (and from its locally attached workers) into a single
//! message. This crate provides:
//!
//! * [`Coloring`] — the set `U` of blue switches, with budget / availability validation.
//! * [`cost`] — closed-form accounting of the Reduce operation:
//!   per-link message counts `msg_e(T, L, U)`, the **utilization complexity**
//!   `φ(T, L, U) = Σ_e msg_e · ρ(e)` (Eq. 1), its *barrier* re-formulation in terms of
//!   closest blue ancestors (Eq. 3 / Lemma 4.2), and the tree decomposition view of
//!   Sec. 4.1.
//! * [`bytes`] — **byte complexity**: the same Reduce executed over an application-level
//!   [`bytes::AggregationModel`] that dictates how message payloads grow or shrink when
//!   aggregated (used for the WC / PS use cases of Sec. 5.3).
//! * [`sim`] — a discrete-event, packet-level simulator that actually executes
//!   Algorithm 1 message by message (store-and-forward at red switches, wait-and-merge
//!   at blue switches, per-link serialization at rate ω) and independently re-derives
//!   the message counts and the utilization complexity, plus latency and bottleneck
//!   metrics that the closed form does not capture.
//!
//! ```
//! use soar_reduce::{cost, Coloring};
//! use soar_topology::builders;
//!
//! let mut tree = builders::complete_binary_tree(7);
//! for (leaf, load) in tree.leaves().collect::<Vec<_>>().into_iter().zip([2u64, 6, 5, 4]) {
//!     tree.set_load(leaf, load);
//! }
//! let all_red = Coloring::all_red(tree.n_switches());
//! let all_blue = Coloring::all_blue(tree.n_switches());
//! assert!(cost::phi(&tree, &all_blue) < cost::phi(&tree, &all_red));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
mod coloring;
pub mod cost;
pub mod sim;

pub use coloring::{Coloring, ColoringError};
