//! Closed-form accounting of the Reduce operation.
//!
//! The central quantity is the **utilization complexity** (Eq. 1 of the paper)
//!
//! ```text
//! φ(T, L, U) = Σ_{e ∈ E} msg_e(T, L, U) · ρ(e)
//! ```
//!
//! where `msg_e` is the number of messages crossing link `e` during the Reduce and
//! `ρ(e) = 1/ω(e)` is the link's per-message transmission time. Under constant unit
//! rates the utilization complexity equals the **message complexity** — the total
//! number of messages sent.
//!
//! The message count on the up-link of a switch `v` follows directly from Algorithm 1:
//!
//! * if `v` is **blue** it forwards exactly **one** message (the aggregate of its
//!   subtree and its locally attached workers);
//! * if `v` is **red** it forwards `L(v)` messages from its own workers plus every
//!   message received from its children.
//!
//! [`phi_barrier`] implements the equivalent "barrier" formulation of Lemma 4.2
//! (Eq. 3), which charges every blue switch one message up to its closest blue ancestor
//! and every red switch `L(v)` messages up to its closest blue ancestor, and
//! [`barrier_components`] exposes the induced tree decomposition of Sec. 4.1.

use crate::Coloring;
use soar_topology::{NodeId, Tree};

/// Number of messages crossing the up-link of every switch during the Reduce.
///
/// Entry `v` of the returned vector is `msg_{(v, p(v))}(T, L, U)`; entry [`soar_topology::ROOT`]
/// is the count on the `(r, d)` link.
pub fn msg_counts(tree: &Tree, coloring: &Coloring) -> Vec<u64> {
    debug_assert_eq!(coloring.len(), tree.n_switches());
    let mut counts = vec![0u64; tree.n_switches()];
    for v in tree.post_order() {
        if coloring.is_blue(v) {
            counts[v] = 1;
        } else {
            let from_children: u64 = tree.children(v).iter().map(|&c| counts[c]).sum();
            counts[v] = tree.load(v) + from_children;
        }
    }
    counts
}

/// The utilization contributed by each up-link: `msg_e · ρ(e)`.
pub fn link_utilization(tree: &Tree, coloring: &Coloring) -> Vec<f64> {
    msg_counts(tree, coloring)
        .into_iter()
        .enumerate()
        .map(|(v, m)| m as f64 * tree.rho(v))
        .collect()
}

/// Total number of messages sent during the Reduce (the message complexity).
///
/// Under unit rates this equals [`phi`].
pub fn message_complexity(tree: &Tree, coloring: &Coloring) -> u64 {
    msg_counts(tree, coloring).into_iter().sum()
}

/// The utilization complexity `φ(T, L, U)` (Eq. 1).
pub fn phi(tree: &Tree, coloring: &Coloring) -> f64 {
    msg_counts(tree, coloring)
        .into_iter()
        .enumerate()
        .map(|(v, m)| m as f64 * tree.rho(v))
        .sum()
}

/// The closest **strict** blue ancestor of `v`, or `None` when the first blue barrier
/// above `v` is the destination `d` itself.
pub fn closest_blue_ancestor(tree: &Tree, coloring: &Coloring, v: NodeId) -> Option<NodeId> {
    let mut cur = tree.parent(v);
    while let Some(u) = cur {
        if coloring.is_blue(u) {
            return Some(u);
        }
        cur = tree.parent(u);
    }
    None
}

/// Hop distance from `v` to its closest strict blue ancestor (or to `d`).
pub fn distance_to_barrier(tree: &Tree, coloring: &Coloring, v: NodeId) -> usize {
    let mut dist = 1;
    let mut cur = tree.parent(v);
    while let Some(u) = cur {
        if coloring.is_blue(u) {
            return dist;
        }
        dist += 1;
        cur = tree.parent(u);
    }
    dist
}

/// Summed ρ from `v` to its closest strict blue ancestor (or to `d`): `ρ(v, p*_v)`.
pub fn rho_to_barrier(tree: &Tree, coloring: &Coloring, v: NodeId) -> f64 {
    let mut acc = tree.rho(v);
    let mut cur = tree.parent(v);
    while let Some(u) = cur {
        if coloring.is_blue(u) {
            return acc;
        }
        acc += tree.rho(u);
        cur = tree.parent(u);
    }
    acc
}

/// The utilization complexity computed via the barrier formulation of Lemma 4.2 (Eq. 3):
///
/// ```text
/// φ(T, L, U) = Σ_{v ∈ U} 1 · ρ(v, p*_v)  +  Σ_{v ∉ U} L(v) · ρ(v, p*_v)
/// ```
///
/// Always equal to [`phi`]; kept as an independent implementation for cross-validation.
pub fn phi_barrier(tree: &Tree, coloring: &Coloring) -> f64 {
    let mut total = 0.0;
    for v in tree.node_ids() {
        let rho = rho_to_barrier(tree, coloring, v);
        if coloring.is_blue(v) {
            total += rho;
        } else {
            total += tree.load(v) as f64 * rho;
        }
    }
    total
}

/// One component of the barrier decomposition of Sec. 4.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierComponent {
    /// The barrier this component drains into: a blue switch, or `None` for the
    /// destination `d`.
    pub barrier: Option<NodeId>,
    /// The switches whose closest strict blue ancestor is `barrier` (the barrier switch
    /// itself belongs to the component *above* it).
    pub members: Vec<NodeId>,
}

/// Partitions the switches by their closest strict blue ancestor, yielding the tree
/// decomposition induced by the coloring (Sec. 4.1). The component utilities sum to
/// `φ(T, L, U)`; see [`component_cost`].
pub fn barrier_components(tree: &Tree, coloring: &Coloring) -> Vec<BarrierComponent> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Option<NodeId>, Vec<NodeId>> = BTreeMap::new();
    for v in tree.node_ids() {
        let barrier = closest_blue_ancestor(tree, coloring, v);
        groups.entry(barrier).or_default().push(v);
    }
    groups
        .into_iter()
        .map(|(barrier, members)| BarrierComponent { barrier, members })
        .collect()
}

/// The utilization contributed by one barrier component: every member switch `v` is
/// charged `ρ(v, barrier)` once if blue and `L(v)` times if red (cf. Eq. 3 restricted to
/// the component's members).
pub fn component_cost(tree: &Tree, coloring: &Coloring, component: &BarrierComponent) -> f64 {
    component
        .members
        .iter()
        .map(|&v| {
            let rho = rho_to_barrier(tree, coloring, v);
            if coloring.is_blue(v) {
                rho
            } else {
                tree.load(v) as f64 * rho
            }
        })
        .sum()
}

/// A full cost report for a single Reduce over a given coloring.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-up-link message counts (`msg_e`).
    pub per_edge_messages: Vec<u64>,
    /// Per-up-link utilization (`msg_e · ρ(e)`).
    pub per_edge_utilization: Vec<f64>,
    /// The utilization complexity φ.
    pub phi: f64,
    /// Total number of messages.
    pub total_messages: u64,
    /// The largest single-link utilization (a bottleneck-link proxy, cf. Sec. 8).
    pub max_link_utilization: f64,
    /// Number of blue switches used.
    pub blue_used: usize,
}

/// Evaluates a coloring into a [`CostReport`].
pub fn evaluate(tree: &Tree, coloring: &Coloring) -> CostReport {
    let per_edge_messages = msg_counts(tree, coloring);
    let per_edge_utilization: Vec<f64> = per_edge_messages
        .iter()
        .enumerate()
        .map(|(v, &m)| m as f64 * tree.rho(v))
        .collect();
    let phi = per_edge_utilization.iter().sum();
    let total_messages = per_edge_messages.iter().sum();
    let max_link_utilization = per_edge_utilization.iter().cloned().fold(0.0, f64::max);
    CostReport {
        phi,
        total_messages,
        max_link_utilization,
        blue_used: coloring.n_blue(),
        per_edge_messages,
        per_edge_utilization,
    }
}

/// Normalizes a cost against the all-red baseline of the same instance, as done
/// throughout Sec. 5 ("the cost reduction compared to the all-red solution").
///
/// Returns 1.0 when the baseline cost is zero (empty workload).
pub fn normalized_to_all_red(tree: &Tree, coloring: &Coloring) -> f64 {
    let baseline = phi(tree, &Coloring::all_red(tree.n_switches()));
    if baseline == 0.0 {
        1.0
    } else {
        phi(tree, coloring) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::{builders, Tree, TreeBuilder};

    /// The Fig. 1 instance: five switches, six worker servers, all-red cost 14 and
    /// all-blue cost 5 under unit rates.
    fn fig1_tree() -> Tree {
        let mut b = TreeBuilder::new();
        let r = b.root(1.0);
        let a = b.child(r, 1.0).unwrap(); // holds x1, x2
        let bb = b.child(r, 1.0).unwrap(); // holds x3
        let dmid = b.child(r, 1.0).unwrap(); // holds x4, parent of the x5/x6 switch
        let c = b.child(dmid, 1.0).unwrap(); // holds x5, x6
        let mut t = b.build().unwrap();
        t.set_load(a, 2);
        t.set_load(bb, 1);
        t.set_load(dmid, 1);
        t.set_load(c, 2);
        t
    }

    /// The Fig. 2 instance: complete binary tree over 7 switches, leaf loads 2, 6, 5, 4.
    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn fig1_all_red_and_all_blue_costs() {
        let t = fig1_tree();
        let all_red = Coloring::all_red(t.n_switches());
        let all_blue = Coloring::all_blue(t.n_switches());
        assert_eq!(message_complexity(&t, &all_red), 14);
        assert_eq!(message_complexity(&t, &all_blue), 5);
        assert!((phi(&t, &all_red) - 14.0).abs() < 1e-9);
        assert!((phi(&t, &all_blue) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn fig2_all_red_cost_and_per_edge_counts() {
        let t = fig2_tree();
        let all_red = Coloring::all_red(7);
        let counts = msg_counts(&t, &all_red);
        assert_eq!(counts, vec![17, 8, 9, 2, 6, 5, 4]);
        assert_eq!(message_complexity(&t, &all_red), 17 + 8 + 9 + 2 + 6 + 5 + 4);
    }

    #[test]
    fn fig2_soar_optimal_coloring_costs_20() {
        // The optimal solution of Fig. 2(d): blue at the leaf with load 6 (node 4) and
        // at the right internal switch (node 2); cost 20.
        let t = fig2_tree();
        let coloring = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        assert!((phi(&t, &coloring) - 20.0).abs() < 1e-9);
        assert!((phi_barrier(&t, &coloring) - 20.0).abs() < 1e-9);
        let counts = msg_counts(&t, &coloring);
        // Leaf loads (2, [blue 1], 5, 4), internal (3, 1), root 4.
        assert_eq!(counts, vec![4, 3, 1, 2, 1, 5, 4]);
    }

    #[test]
    fn fig2_strategy_colorings_match_paper_costs() {
        let t = fig2_tree();
        // Top (Fig. 2(a)): blue at the root and at the right internal switch, cost 27.
        let top = Coloring::from_blue_nodes(7, [0, 2]).unwrap();
        assert!((phi(&t, &top) - 27.0).abs() < 1e-9);
        // Max: the two leaves with the largest loads (6 and 5), cost 24.
        let max = Coloring::from_blue_nodes(7, [4, 5]).unwrap();
        assert!((phi(&t, &max) - 24.0).abs() < 1e-9);
        // Level: the level of size 2 (both internal switches), cost 21.
        let level = Coloring::from_blue_nodes(7, [1, 2]).unwrap();
        assert!((phi(&t, &level) - 21.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_optimal_costs_for_growing_k() {
        let t = fig2_tree();
        // Fig. 3 reports optimal utilization 35, 20, 15, 11 for k = 1..4.
        // k = 1 is not unique; Fig. 3(a) colors the root. Blue at node 2 is also optimal.
        let k1 = Coloring::from_blue_nodes(7, [0]).unwrap();
        assert!((phi(&t, &k1) - 35.0).abs() < 1e-9);
        let k1_alt = Coloring::from_blue_nodes(7, [2]).unwrap();
        assert!((phi(&t, &k1_alt) - 35.0).abs() < 1e-9);
        let k2 = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        assert!((phi(&t, &k2) - 20.0).abs() < 1e-9);
        let k3 = Coloring::from_blue_nodes(7, [4, 5, 6]).unwrap();
        assert!((phi(&t, &k3) - 15.0).abs() < 1e-9);
        let k4 = Coloring::from_blue_nodes(7, [4, 5, 6, 1]).unwrap();
        assert!((phi(&t, &k4) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_formulation_matches_direct_formula() {
        let t = fig2_tree();
        for blues in [vec![], vec![0], vec![1, 2], vec![4, 2], vec![0, 3, 6]] {
            let c = Coloring::from_blue_nodes(7, blues).unwrap();
            assert!(
                (phi(&t, &c) - phi_barrier(&t, &c)).abs() < 1e-9,
                "Eq. 1 and Eq. 3 must agree"
            );
        }
    }

    #[test]
    fn closest_blue_ancestor_and_distances() {
        let t = fig2_tree();
        let c = Coloring::from_blue_nodes(7, [1]).unwrap();
        assert_eq!(closest_blue_ancestor(&t, &c, 3), Some(1));
        assert_eq!(closest_blue_ancestor(&t, &c, 1), None);
        assert_eq!(closest_blue_ancestor(&t, &c, 5), None);
        assert_eq!(distance_to_barrier(&t, &c, 3), 1);
        assert_eq!(distance_to_barrier(&t, &c, 5), 3); // leaf → internal → root → d
        assert!((rho_to_barrier(&t, &c, 5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_components_partition_and_sum_to_phi() {
        let t = fig2_tree();
        let c = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        let comps = barrier_components(&t, &c);
        let all_members: usize = comps.iter().map(|c| c.members.len()).sum();
        assert_eq!(all_members, 7, "components must partition the switches");
        let total: f64 = comps.iter().map(|comp| component_cost(&t, &c, comp)).sum();
        assert!((total - phi(&t, &c)).abs() < 1e-9);
        // Blue node 2 is the barrier of its two leaves; blue node 4 is a leaf so its
        // "subtree" is just itself, absorbed into the destination component.
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|comp| comp.barrier.is_none()));
        assert!(comps.iter().any(|comp| comp.barrier == Some(2)));
    }

    #[test]
    fn rates_scale_the_utilization() {
        let mut t = fig2_tree();
        // Double every rate: utilization halves.
        let base = phi(&t, &Coloring::all_red(7));
        for v in 0..7 {
            t.set_rate(v, 2.0);
        }
        let halved = phi(&t, &Coloring::all_red(7));
        assert!((halved - base / 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_report_is_consistent() {
        let t = fig2_tree();
        let c = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        let report = evaluate(&t, &c);
        assert_eq!(report.blue_used, 2);
        assert_eq!(report.total_messages, 20);
        assert!((report.phi - 20.0).abs() < 1e-9);
        assert!((report.max_link_utilization - 5.0).abs() < 1e-9);
        assert_eq!(report.per_edge_messages.len(), 7);
        let sum: f64 = report.per_edge_utilization.iter().sum();
        assert!((sum - report.phi).abs() < 1e-9);
    }

    #[test]
    fn normalization_against_all_red() {
        let t = fig2_tree();
        let c = Coloring::from_blue_nodes(7, [4, 2]).unwrap();
        let norm = normalized_to_all_red(&t, &c);
        assert!((norm - 20.0 / 51.0).abs() < 1e-9);
        assert!((normalized_to_all_red(&t, &Coloring::all_red(7)) - 1.0).abs() < 1e-12);

        // Zero-load instance: normalization degenerates to 1.
        let empty = builders::complete_binary_tree(3);
        assert_eq!(normalized_to_all_red(&empty, &Coloring::all_red(3)), 1.0);
    }

    #[test]
    fn blue_switch_with_empty_subtree_still_emits_one_message() {
        // Matches the model of Eq. 3 / Algorithm 3 (a blue switch always reports one
        // aggregate): a load-free blue leaf contributes one message on its up-link.
        let mut t = builders::star(3);
        t.set_load(1, 0);
        t.set_load(2, 4);
        let c = Coloring::from_blue_nodes(3, [1]).unwrap();
        let counts = msg_counts(&t, &c);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 4);
        assert_eq!(counts[0], 5);
    }

    #[test]
    fn zero_load_red_switch_sends_nothing() {
        let mut t = builders::path(3);
        t.set_load(2, 3);
        let c = Coloring::all_red(3);
        let counts = msg_counts(&t, &c);
        assert_eq!(counts, vec![3, 3, 3]);
        let mut t2 = builders::path(3);
        t2.set_load(1, 0);
        t2.set_load(2, 0);
        assert_eq!(msg_counts(&t2, &Coloring::all_red(3)), vec![0, 0, 0]);
        assert_eq!(phi(&t2, &Coloring::all_red(3)), 0.0);
    }

    #[test]
    fn internal_load_is_counted() {
        // Fig. 1 has a worker (x4) attached to an internal switch.
        let t = fig1_tree();
        let c = Coloring::from_blue_nodes(5, [3]).unwrap(); // the x4 switch is blue
        let counts = msg_counts(&t, &c);
        // The blue internal switch absorbs its own worker and the x5/x6 messages.
        assert_eq!(counts[3], 1);
        assert_eq!(counts[4], 2);
        assert_eq!(counts[0], 2 + 1 + 1);
    }
}
