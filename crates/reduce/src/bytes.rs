//! Byte complexity: the actual number of bytes crossing every link during a Reduce.
//!
//! Sec. 5.3 of the paper distinguishes the *utilization complexity* (which treats every
//! message as one unit) from the *byte complexity*, where the payload carried by a
//! message depends on the application and may **grow when aggregated** (e.g. merging
//! word-count dictionaries) or stay bounded (e.g. element-wise gradient sums over a
//! fixed feature space).
//!
//! The application behaviour is abstracted by the [`AggregationModel`] trait: it
//! defines what payload a single worker produces, how payloads combine when an
//! aggregation switch merges messages, and how many bytes a message carrying a given
//! payload occupies on the wire. The [`byte_complexity`] evaluator then executes the
//! Reduce of Algorithm 1 over payloads instead of unit messages.
//!
//! Concrete models for the paper's WC (word-count) and PS (parameter-server) use cases
//! live in the `soar-apps` crate; this module only ships the generic machinery plus a
//! [`FixedSizeModel`] in which every message has the same size — under that model the
//! byte complexity is exactly `M ·` message complexity, which is used for
//! cross-validation in tests.

use crate::{cost, Coloring};
use rand::Rng;
use soar_topology::{NodeId, Tree};

/// An application-level description of what Reduce messages carry and how they merge.
pub trait AggregationModel {
    /// The payload carried by one message.
    type Payload: Clone;

    /// The payload produced by a single worker server attached to switch `switch`.
    ///
    /// The switch id and the worker index are provided so models can generate
    /// deterministic, per-worker content (e.g. a distinct shard of a corpus).
    fn worker_payload<R: Rng + ?Sized>(
        &self,
        switch: NodeId,
        worker_index: u64,
        rng: &mut R,
    ) -> Self::Payload;

    /// Merges `other` into `acc` — the aggregation performed by a blue switch (and by
    /// the destination / parameter server).
    fn merge(&self, acc: &mut Self::Payload, other: &Self::Payload);

    /// The wire size, in bytes, of a message carrying `payload`.
    fn size_bytes(&self, payload: &Self::Payload) -> u64;

    /// The payload of an "empty" aggregate (used by a blue switch whose subtree holds
    /// no workers; such a switch still emits a single — empty — report).
    fn empty(&self) -> Self::Payload;
}

/// A degenerate model in which every message occupies exactly `message_bytes` bytes and
/// aggregation does not change the size. Matches the unit-message accounting of the
/// utilization complexity up to the constant factor `message_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedSizeModel {
    /// Size of every message in bytes (the paper's bound `M`).
    pub message_bytes: u64,
}

impl FixedSizeModel {
    /// Creates a fixed-size model with the given message size.
    pub fn new(message_bytes: u64) -> Self {
        Self { message_bytes }
    }
}

impl AggregationModel for FixedSizeModel {
    type Payload = ();

    fn worker_payload<R: Rng + ?Sized>(&self, _switch: NodeId, _worker: u64, _rng: &mut R) {}

    fn merge(&self, _acc: &mut (), _other: &()) {}

    fn size_bytes(&self, _payload: &()) -> u64 {
        self.message_bytes
    }

    fn empty(&self) {}
}

/// The outcome of executing a Reduce over an [`AggregationModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ByteReport {
    /// Bytes crossing the up-link of every switch.
    pub per_edge_bytes: Vec<u64>,
    /// Messages crossing the up-link of every switch (matches [`cost::msg_counts`]).
    pub per_edge_messages: Vec<u64>,
    /// Total bytes over all links.
    pub total_bytes: u64,
    /// Total messages over all links.
    pub total_messages: u64,
    /// Byte-weighted utilization: `Σ_e bytes_e · ρ(e)` — the transmission-time analogue
    /// of φ when message sizes are taken into account.
    pub byte_utilization: f64,
}

/// Executes the Reduce of Algorithm 1 over application payloads and reports the
/// byte complexity.
///
/// Semantics per switch `v`, processed leaves-to-root:
///
/// * every worker attached to `v` produces one payload via
///   [`AggregationModel::worker_payload`];
/// * a **red** `v` forwards every message it holds (its own workers' messages plus all
///   messages received from children) unchanged;
/// * a **blue** `v` merges everything it holds into a single message (an empty
///   aggregate if it holds nothing) and forwards only that.
pub fn byte_complexity<M, R>(tree: &Tree, coloring: &Coloring, model: &M, rng: &mut R) -> ByteReport
where
    M: AggregationModel,
    R: Rng + ?Sized,
{
    debug_assert_eq!(coloring.len(), tree.n_switches());
    let n = tree.n_switches();
    let mut per_edge_bytes = vec![0u64; n];
    let mut per_edge_messages = vec![0u64; n];
    // Messages currently travelling up from each switch (payloads on its up-link).
    let mut outbox: Vec<Vec<M::Payload>> = vec![Vec::new(); n];

    for v in tree.post_order() {
        // Collect everything this switch holds: children's forwarded messages plus the
        // messages produced by its local workers.
        let mut held: Vec<M::Payload> = Vec::new();
        for &c in tree.children(v) {
            held.append(&mut outbox[c]);
        }
        for w in 0..tree.load(v) {
            held.push(model.worker_payload(v, w, rng));
        }

        let sent: Vec<M::Payload> = if coloring.is_blue(v) {
            let mut agg = model.empty();
            for p in &held {
                model.merge(&mut agg, p);
            }
            vec![agg]
        } else {
            held
        };

        per_edge_messages[v] = sent.len() as u64;
        per_edge_bytes[v] = sent.iter().map(|p| model.size_bytes(p)).sum();
        outbox[v] = sent;
    }

    let total_bytes = per_edge_bytes.iter().sum();
    let total_messages = per_edge_messages.iter().sum();
    let byte_utilization = per_edge_bytes
        .iter()
        .enumerate()
        .map(|(v, &b)| b as f64 * tree.rho(v))
        .sum();
    ByteReport {
        per_edge_bytes,
        per_edge_messages,
        total_bytes,
        total_messages,
        byte_utilization,
    }
}

/// Convenience: the total byte complexity of a coloring under a model.
pub fn total_bytes<M, R>(tree: &Tree, coloring: &Coloring, model: &M, rng: &mut R) -> u64
where
    M: AggregationModel,
    R: Rng + ?Sized,
{
    byte_complexity(tree, coloring, model, rng).total_bytes
}

/// Sanity helper: under any model, the *message* counts produced while evaluating the
/// byte complexity must agree with the closed-form [`cost::msg_counts`] — except that a
/// red switch with zero held messages trivially matches as well.
pub fn messages_match_closed_form(report: &ByteReport, tree: &Tree, coloring: &Coloring) -> bool {
    report.per_edge_messages == cost::msg_counts(tree, coloring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use soar_topology::builders;
    use std::collections::BTreeSet;

    fn fig2_tree() -> Tree {
        let mut t = builders::complete_binary_tree(7);
        t.set_load(3, 2);
        t.set_load(4, 6);
        t.set_load(5, 5);
        t.set_load(6, 4);
        t
    }

    #[test]
    fn fixed_size_model_matches_message_complexity() {
        let t = fig2_tree();
        let model = FixedSizeModel::new(100);
        let mut rng = StdRng::seed_from_u64(0);
        for blues in [vec![], vec![0], vec![4, 2], (0..7).collect::<Vec<_>>()] {
            let c = Coloring::from_blue_nodes(7, blues).unwrap();
            let report = byte_complexity(&t, &c, &model, &mut rng);
            assert_eq!(report.total_messages, cost::message_complexity(&t, &c));
            assert_eq!(report.total_bytes, 100 * report.total_messages);
            assert!(messages_match_closed_form(&report, &t, &c));
            assert!((report.byte_utilization - 100.0 * cost::phi(&t, &c)).abs() < 1e-6);
        }
    }

    /// A toy "distinct keys" model: every worker contributes a set of keys, aggregation
    /// unions the sets, and a message costs 8 bytes per key. This captures the
    /// size-growth behaviour of the WC use case in miniature.
    struct KeySetModel {
        keys_per_worker: u64,
        universe: u64,
    }

    impl AggregationModel for KeySetModel {
        type Payload = BTreeSet<u64>;

        fn worker_payload<R: Rng + ?Sized>(
            &self,
            _switch: NodeId,
            _worker: u64,
            rng: &mut R,
        ) -> BTreeSet<u64> {
            (0..self.keys_per_worker)
                .map(|_| rng.random_range(0..self.universe))
                .collect()
        }

        fn merge(&self, acc: &mut BTreeSet<u64>, other: &BTreeSet<u64>) {
            acc.extend(other.iter().copied());
        }

        fn size_bytes(&self, payload: &BTreeSet<u64>) -> u64 {
            8 * payload.len() as u64
        }

        fn empty(&self) -> BTreeSet<u64> {
            BTreeSet::new()
        }
    }

    #[test]
    fn aggregation_never_increases_bytes_on_upper_links() {
        // With a union model, all-blue transmits no more bytes than all-red on every link.
        let t = fig2_tree();
        let model = KeySetModel {
            keys_per_worker: 32,
            universe: 128,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let red_report = byte_complexity(&t, &Coloring::all_red(7), &model, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let blue_report = byte_complexity(&t, &Coloring::all_blue(7), &model, &mut rng);
        assert!(blue_report.total_bytes <= red_report.total_bytes);
        for v in t.node_ids() {
            assert!(blue_report.per_edge_bytes[v] <= red_report.per_edge_bytes[v]);
        }
    }

    #[test]
    fn blue_switch_emits_single_message_even_with_empty_subtree() {
        let mut t = builders::star(3);
        t.set_load(2, 2);
        let c = Coloring::from_blue_nodes(3, [1]).unwrap();
        let model = FixedSizeModel::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        let report = byte_complexity(&t, &c, &model, &mut rng);
        assert_eq!(report.per_edge_messages[1], 1);
        assert_eq!(report.per_edge_bytes[1], 10);
    }

    #[test]
    fn per_edge_totals_are_consistent() {
        let t = fig2_tree();
        let model = KeySetModel {
            keys_per_worker: 8,
            universe: 1000,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let c = Coloring::from_blue_nodes(7, [1, 2]).unwrap();
        let report = byte_complexity(&t, &c, &model, &mut rng);
        assert_eq!(
            report.total_bytes,
            report.per_edge_bytes.iter().sum::<u64>()
        );
        assert_eq!(
            report.total_messages,
            report.per_edge_messages.iter().sum::<u64>()
        );
        assert!(report.byte_utilization > 0.0);
        assert_eq!(
            total_bytes(&t, &c, &model, &mut StdRng::seed_from_u64(3)),
            report.total_bytes
        );
    }

    #[test]
    fn root_link_bytes_bounded_by_destination_view() {
        // Under all-blue, the root forwards exactly one aggregate whose size is at most
        // the union of all worker keys.
        let t = fig2_tree();
        let model = KeySetModel {
            keys_per_worker: 4,
            universe: 64,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let report = byte_complexity(&t, &Coloring::all_blue(7), &model, &mut rng);
        assert_eq!(report.per_edge_messages[0], 1);
        assert!(report.per_edge_bytes[0] <= 8 * 64);
    }
}
