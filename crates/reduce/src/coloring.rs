//! The set `U ⊆ Λ` of aggregation (blue) switches.

use serde::{Deserialize, Serialize};
use soar_topology::{NodeId, Tree};
use std::fmt;

/// Errors raised when a coloring violates the constraints of the φ-BIC problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// The coloring refers to a switch id outside the tree.
    UnknownNode(NodeId),
    /// More blue switches than the budget `k` allows.
    BudgetExceeded {
        /// Number of blue switches in the coloring.
        used: usize,
        /// The allowed budget `k`.
        budget: usize,
    },
    /// A blue switch is not in the availability set Λ.
    Unavailable(NodeId),
    /// The coloring was built for a different tree size.
    SizeMismatch {
        /// Length of the coloring.
        coloring: usize,
        /// Number of switches in the tree.
        tree: usize,
    },
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::UnknownNode(v) => write!(f, "unknown switch id {v}"),
            ColoringError::BudgetExceeded { used, budget } => {
                write!(f, "{used} blue switches exceed the budget k = {budget}")
            }
            ColoringError::Unavailable(v) => {
                write!(f, "switch {v} is blue but not in the availability set Λ")
            }
            ColoringError::SizeMismatch { coloring, tree } => write!(
                f,
                "coloring over {coloring} switches applied to a tree of {tree} switches"
            ),
        }
    }
}

impl std::error::Error for ColoringError {}

/// A red/blue assignment over the switches of a tree: `U` is the set of blue switches.
///
/// A coloring is a plain value type — it does not hold a reference to the tree it was
/// computed for — so it can be stored, serialized and compared freely. Use
/// [`Coloring::validate`] to check it against a specific tree, budget and availability
/// set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    blue: Vec<bool>,
    n_blue: usize,
}

impl Default for Coloring {
    /// An empty coloring over zero switches — the seed of the buffer-reuse
    /// APIs ([`Coloring::reset_all_red`] grows it to size on first use).
    fn default() -> Self {
        Coloring::all_red(0)
    }
}

impl Coloring {
    /// The all-red coloring (`U = ∅`) over `n` switches.
    pub fn all_red(n: usize) -> Self {
        Coloring {
            blue: vec![false; n],
            n_blue: 0,
        }
    }

    /// The all-blue coloring (`U = S`) over `n` switches.
    pub fn all_blue(n: usize) -> Self {
        Coloring {
            blue: vec![true; n],
            n_blue: n,
        }
    }

    /// The coloring that marks exactly the available switches of `tree` blue (`U = Λ`).
    pub fn all_available_blue(tree: &Tree) -> Self {
        let mut c = Coloring::all_red(tree.n_switches());
        for v in tree.node_ids() {
            if tree.available(v) {
                c.set_blue(v);
            }
        }
        c
    }

    /// Builds a coloring over `n` switches from an iterator of blue switch ids.
    ///
    /// Returns an error if an id is out of range; duplicates are tolerated.
    pub fn from_blue_nodes<I>(n: usize, blue: I) -> Result<Self, ColoringError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut c = Coloring::all_red(n);
        for v in blue {
            if v >= n {
                return Err(ColoringError::UnknownNode(v));
            }
            c.set_blue(v);
        }
        Ok(c)
    }

    /// Number of switches this coloring covers.
    pub fn len(&self) -> usize {
        self.blue.len()
    }

    /// Whether the coloring covers zero switches.
    pub fn is_empty(&self) -> bool {
        self.blue.is_empty()
    }

    /// Whether switch `v` is blue (an aggregation switch).
    pub fn is_blue(&self, v: NodeId) -> bool {
        self.blue[v]
    }

    /// Whether switch `v` is red (a forwarding switch).
    pub fn is_red(&self, v: NodeId) -> bool {
        !self.blue[v]
    }

    /// Number of blue switches `|U|`.
    pub fn n_blue(&self) -> usize {
        self.n_blue
    }

    /// Marks switch `v` blue.
    pub fn set_blue(&mut self, v: NodeId) {
        if !self.blue[v] {
            self.blue[v] = true;
            self.n_blue += 1;
        }
    }

    /// Marks switch `v` red.
    pub fn set_red(&mut self, v: NodeId) {
        if self.blue[v] {
            self.blue[v] = false;
            self.n_blue -= 1;
        }
    }

    /// Resets this coloring in place to all-red over `n` switches, reusing the
    /// backing storage. Returns `1` when the buffer had to grow (i.e. performed
    /// a heap allocation), `0` otherwise — the same convention as the solver
    /// workspace's allocation counters, which is what lets sweep-heavy callers
    /// trace SOAR-Color through a reused coloring without a per-trace
    /// allocation.
    pub fn reset_all_red(&mut self, n: usize) -> usize {
        let grew = usize::from(self.blue.capacity() < n);
        self.blue.clear();
        self.blue.resize(n, false);
        self.n_blue = 0;
        grew
    }

    /// Overwrites this coloring with `other`, reusing the backing storage
    /// (allocates only if `other` is larger than this coloring's capacity).
    pub fn copy_from(&mut self, other: &Coloring) {
        self.blue.clear();
        self.blue.extend_from_slice(&other.blue);
        self.n_blue = other.n_blue;
    }

    /// Number of switches whose color differs between the two colorings — the
    /// "placement moves" metric of the online re-optimization driver.
    ///
    /// # Panics
    ///
    /// Panics if the colorings cover a different number of switches.
    pub fn count_differences(&self, other: &Coloring) -> usize {
        assert_eq!(
            self.blue.len(),
            other.blue.len(),
            "colorings must cover the same switches to be compared"
        );
        self.blue
            .iter()
            .zip(&other.blue)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The blue switch ids, in increasing order.
    pub fn blue_nodes(&self) -> Vec<NodeId> {
        self.blue
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| if b { Some(v) } else { None })
            .collect()
    }

    /// Iterator over the blue switch ids.
    pub fn iter_blue(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blue
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| if b { Some(v) } else { None })
    }

    /// Validates this coloring against a tree, a budget `k` and the tree's availability
    /// set Λ: the coloring must cover exactly the tree's switches, use at most `k` blue
    /// switches, and only color available switches blue.
    pub fn validate(&self, tree: &Tree, k: usize) -> Result<(), ColoringError> {
        if self.blue.len() != tree.n_switches() {
            return Err(ColoringError::SizeMismatch {
                coloring: self.blue.len(),
                tree: tree.n_switches(),
            });
        }
        if self.n_blue > k {
            return Err(ColoringError::BudgetExceeded {
                used: self.n_blue,
                budget: k,
            });
        }
        for v in self.iter_blue() {
            if !tree.available(v) {
                return Err(ColoringError::Unavailable(v));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soar_topology::builders;

    #[test]
    fn constructors() {
        let red = Coloring::all_red(5);
        assert_eq!(red.n_blue(), 0);
        assert_eq!(red.len(), 5);
        assert!(!red.is_empty());
        assert!(red.is_red(3));

        let blue = Coloring::all_blue(5);
        assert_eq!(blue.n_blue(), 5);
        assert!(blue.is_blue(0));

        let c = Coloring::from_blue_nodes(5, [1, 3, 3]).unwrap();
        assert_eq!(c.n_blue(), 2);
        assert_eq!(c.blue_nodes(), vec![1, 3]);
        assert_eq!(c.iter_blue().collect::<Vec<_>>(), vec![1, 3]);

        assert_eq!(
            Coloring::from_blue_nodes(5, [7]),
            Err(ColoringError::UnknownNode(7))
        );
    }

    #[test]
    fn set_and_unset_track_counts() {
        let mut c = Coloring::all_red(4);
        c.set_blue(2);
        c.set_blue(2);
        assert_eq!(c.n_blue(), 1);
        c.set_red(2);
        c.set_red(2);
        assert_eq!(c.n_blue(), 0);
    }

    #[test]
    fn reset_copy_and_diff_reuse_storage() {
        let mut c = Coloring::from_blue_nodes(6, [1, 4]).unwrap();
        // First reset to a larger size may grow; the second never does.
        assert_eq!(c.reset_all_red(8), 1);
        assert_eq!(c.n_blue(), 0);
        assert_eq!(c.len(), 8);
        c.set_blue(2);
        assert_eq!(c.reset_all_red(8), 0, "warm reset is allocation-free");
        assert_eq!(c.reset_all_red(3), 0, "shrinking reuses the buffer");
        assert_eq!(c.len(), 3);

        let other = Coloring::from_blue_nodes(3, [0, 2]).unwrap();
        c.copy_from(&other);
        assert_eq!(c, other);
        c.set_red(0);
        assert_eq!(c.count_differences(&other), 1);
        assert_eq!(other.count_differences(&other), 0);
    }

    #[test]
    #[should_panic(expected = "same switches")]
    fn diff_of_mismatched_sizes_panics() {
        let a = Coloring::all_red(3);
        let b = Coloring::all_red(4);
        let _ = a.count_differences(&b);
    }

    #[test]
    fn all_available_blue_respects_lambda() {
        let mut tree = builders::complete_binary_tree(7);
        tree.set_available(0, false);
        tree.set_available(3, false);
        let c = Coloring::all_available_blue(&tree);
        assert_eq!(c.n_blue(), 5);
        assert!(!c.is_blue(0));
        assert!(!c.is_blue(3));
        assert!(c.is_blue(1));
    }

    #[test]
    fn validate_checks_budget_availability_and_size() {
        let mut tree = builders::complete_binary_tree(7);
        tree.set_available(2, false);

        let ok = Coloring::from_blue_nodes(7, [1, 3]).unwrap();
        assert!(ok.validate(&tree, 2).is_ok());
        assert_eq!(
            ok.validate(&tree, 1),
            Err(ColoringError::BudgetExceeded { used: 2, budget: 1 })
        );

        let unavailable = Coloring::from_blue_nodes(7, [2]).unwrap();
        assert_eq!(
            unavailable.validate(&tree, 3),
            Err(ColoringError::Unavailable(2))
        );

        let wrong_size = Coloring::all_red(3);
        assert_eq!(
            wrong_size.validate(&tree, 3),
            Err(ColoringError::SizeMismatch {
                coloring: 3,
                tree: 7
            })
        );
    }

    #[test]
    fn serde_round_trip() {
        let c = Coloring::from_blue_nodes(6, [0, 5]).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let parsed: Coloring = serde_json::from_str(&json).unwrap();
        assert_eq!(c, parsed);
    }

    #[test]
    fn error_messages() {
        assert!(ColoringError::UnknownNode(1).to_string().contains('1'));
        assert!(ColoringError::BudgetExceeded { used: 3, budget: 2 }
            .to_string()
            .contains("k = 2"));
        assert!(ColoringError::Unavailable(4).to_string().contains('4'));
        assert!(ColoringError::SizeMismatch {
            coloring: 1,
            tree: 2
        }
        .to_string()
        .contains("tree of 2"));
    }
}
