//! # soar
//!
//! Facade crate for the SOAR reproduction (Segal, Avin, Scalosub — *"SOAR: Minimizing
//! Network Utilization with Bounded In-network Computing"*, CoNEXT 2021).
//!
//! It simply re-exports the workspace crates under one roof so applications can depend
//! on a single package:
//!
//! * [`topology`] — tree networks, loads, link rates, topology generators;
//! * [`reduce`] — the Reduce cost model (utilization, messages, bytes) and a
//!   packet-level simulator;
//! * [`core`] — the SOAR algorithm, the contending placement strategies and a
//!   brute-force oracle;
//! * [`apps`] — the word-count (WC) and parameter-server (PS) workload models;
//! * [`multitenant`] — the online multi-workload allocation scenario;
//! * [`dataplane`] — the distributed message-passing prototype.
//!
//! ```
//! use soar::prelude::*;
//!
//! let mut tree = builders::complete_binary_tree(7);
//! for (leaf, load) in [(3, 2), (4, 6), (5, 5), (6, 4)] {
//!     tree.set_load(leaf, load);
//! }
//! let solution = soar::core::solve(&tree, 2);
//! assert_eq!(solution.cost, 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soar_apps as apps;
pub use soar_core as core;
pub use soar_dataplane as dataplane;
pub use soar_multitenant as multitenant;
pub use soar_reduce as reduce;
pub use soar_topology as topology;

/// One-stop prelude for examples and applications.
pub mod prelude {
    pub use soar_core::prelude::*;
    pub use soar_core::Strategy;
    pub use soar_reduce::{cost, Coloring};
    pub use soar_topology::builders;
    pub use soar_topology::load::{LoadPlacement, LoadSpec};
    pub use soar_topology::rates::RateScheme;
    pub use soar_topology::{Tree, TreeBuilder};
}
