//! # soar
//!
//! Facade crate for the SOAR reproduction (Segal, Avin, Scalosub — *"SOAR: Minimizing
//! Network Utilization with Bounded In-network Computing"*, CoNEXT 2021).
//!
//! It re-exports the workspace crates under one roof so applications can depend
//! on a single package:
//!
//! * [`topology`] — tree networks, loads, link rates, topology generators;
//! * [`reduce`] — the Reduce cost model (utilization, messages, bytes) and a
//!   packet-level simulator;
//! * [`core`] — the unified [`Instance`](core::api::Instance) /
//!   [`Solver`](core::api::Solver) API, the SOAR algorithm, the contending
//!   placement strategies and a brute-force oracle;
//! * [`apps`] — the word-count (WC) and parameter-server (PS) workload models;
//! * [`multitenant`] — the online multi-workload allocation scenario and the
//!   churn-timeline generators;
//! * [`online`] — the incremental re-optimization engine for dynamic
//!   workloads ([`DynamicInstance`](online::DynamicInstance) +
//!   [`OnlineDriver`](online::OnlineDriver): epoch re-solves refill only the
//!   dirty root-to-leaf paths of the DP, bit-identical to a full solve);
//! * [`dataplane`] — the distributed message-passing prototype;
//! * [`serve`] — the long-running `soar serve` daemon: resident per-tenant
//!   [`DynamicInstance`](online::DynamicInstance)s behind a length-prefixed
//!   binary protocol, with admission control that sheds under overload;
//! * [`loadtest`] — the churn-synthesizing client harness reporting sustained
//!   events/sec and latency percentiles as gated `BENCH_serve.json` artifacts;
//! * [`fabric`] — congestion-constrained placement on multi-root datacenter
//!   fabrics (the 2022 sequel paper): [`FabricSpec`](fabric::FabricSpec) →
//!   [`FabricInstance`](fabric::FabricInstance), the exact
//!   [`DecomposeSolver`](fabric::DecomposeSolver) (per-tree arena DP +
//!   knapsack composition) and an exhaustive small-size oracle;
//! * [`pool`] — the std-only work-stealing thread pool behind the batch entry
//!   points and the level-parallel gather;
//! * [`obs`] — structured tracing and metrics: per-thread span rings drained
//!   into Chrome `trace_event` JSON (`soar trace`, Perfetto-loadable) and a
//!   process-wide counter/gauge registry exposed in Prometheus text format
//!   (`soar serve --obs-addr`);
//! * [`exp`] — the declarative experiment layer
//!   ([`ExperimentSpec`](exp::ExperimentSpec) → [`RunArtifact`](exp::RunArtifact)
//!   with golden-snapshot diffing) behind the `soar` CLI binary and the
//!   `soar-bench` figure harness.
//!
//! The package also ships the `soar` CLI (`cargo run --bin soar -- --help`):
//! `solve` / `sweep` / `compare` over serialized
//! [`Instance`](core::api::Instance) JSON, and `experiment run|list|check` for
//! the declarative figure pipeline.
//!
//! The recommended workflow describes a whole φ-BIC scenario `(T, L, Λ, k)` as one
//! immutable [`Instance`](core::api::Instance) and hands it to any registered
//! [`Solver`](core::api::Solver); see `soar::core::api` for batch and budget-sweep
//! entry points that fan out across threads.
//!
//! ```
//! use soar::prelude::*;
//!
//! // The paper's motivating example (Fig. 2) as a first-class instance.
//! let instance = Instance::builder()
//!     .topology(TopologySpec::CompleteKary { arity: 2, n_switches: 7 })
//!     .leaf_loads(LoadSpec::Explicit(vec![2, 6, 5, 4]))
//!     .budget(2)
//!     .build()
//!     .unwrap();
//! let report = SoarSolver.solve(&instance);
//! assert_eq!(report.solution.cost, 20.0);
//!
//! // The classic tree-first entry points still work.
//! let solution = soar::core::solve(instance.tree(), 2);
//! assert_eq!(solution.cost, 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use soar_apps as apps;
pub use soar_core as core;
pub use soar_dataplane as dataplane;
pub use soar_exp as exp;
pub use soar_fabric as fabric;
pub use soar_loadtest as loadtest;
pub use soar_multitenant as multitenant;
pub use soar_obs as obs;
pub use soar_online as online;
pub use soar_pool as pool;
pub use soar_reduce as reduce;
pub use soar_serve as serve;
pub use soar_topology as topology;

/// One-stop prelude for examples and applications.
pub mod prelude {
    pub use soar_core::api::{
        solve_batch, solve_matrix, solvers, sweep_budgets, sweep_budgets_batch, Instance,
        SoarSolver, SolveReport, Solver, StrategySolver, TopologySpec,
    };
    pub use soar_core::prelude::*;
    pub use soar_core::Strategy;
    pub use soar_reduce::{cost, Coloring};
    pub use soar_topology::builders;
    pub use soar_topology::load::{LoadPlacement, LoadSpec};
    pub use soar_topology::rates::RateScheme;
    pub use soar_topology::{Tree, TreeBuilder};
}
