//! The `soar` CLI: solve φ-BIC instances and drive the declarative experiment
//! pipeline from the shell.
//!
//! ```text
//! soar solve    --in instance.json [--solver soar] [--out report.json]
//! soar sweep    --in instance.json --budgets 1,2,4,8 [--out artifact.json]
//! soar compare  --in instance.json [--solvers soar,top,max-load] [--out artifact.json]
//! soar instance --topology bt --switches 128 [--load power-law] [--rates constant]
//!               [--seed N] [--budget K] [--out instance.json]
//! soar experiment list [--paper]
//! soar experiment run <name|spec.json>... [--paper] [--reps N] [--out-dir DIR] [--csv]
//! soar experiment check <artifact.json> --golden <golden.json> [--rel X] [--abs X] [--timing-rel X]
//! soar online run [--switches N] [--budget K] [--epochs E] [--seed S] [--out artifact.json]
//! soar online replay <artifact.json>
//! soar fabric solve [--cores C --pods P --aggs A --tors T | --roots R --tree-switches N]
//!                   [--budget K] [--bound C] [--gamma G] [--solvers LIST] [--out artifact.json]
//! soar fabric sweep --bounds 1,2,4 [same topology/budget flags] [--out artifact.json]
//! soar serve [--addr HOST:PORT] [--queue-cap N] [--inflight-cap N] [--metrics-out FILE]
//! soar loadtest --addr HOST:PORT [--tenants N] [--batches N] [--rate R] [--out BENCH_serve.json]
//! soar history report <artifact.json>... | --dir DIR [--spec NAME]
//! soar history check <new.json> --baseline <old.json> [--max-regress 25%]
//! ```
//!
//! Instances and artifacts are JSON documents (the feature-gated serde support
//! of `soar-core` plus the `soar-exp` artifact format). `experiment run` takes
//! registry names *or* paths to user-authored spec files (anything ending in
//! `.json` or containing a path separator), which are validated before running.
//! Spec files may pull shared scenario fragments in with `$include` directives
//! (see `soar_exp::template`), resolved relative to the including file.
//! Exit codes: `0` on success, `1` on operational failures (missing files, a
//! failed golden check, a perf regression), `2` on usage errors and invalid
//! spec documents. Argument parsing is hand-rolled — the build environment is
//! offline, so no external CLI crates.

use soar::core::api::{solvers, Instance, SolveReport, Solver, TopologySpec};
use soar::exp::history;
use soar::exp::prelude::*;
use soar::exp::spec::ExperimentKind;
use soar::topology::load::{LoadPlacement, LoadSpec};
use soar::topology::rates::RateScheme;

/// A CLI failure: bad usage (exit 2, prints the usage banner), an invalid
/// user-authored document (exit 2, prints only the actionable message), or an
/// operational error (exit 1).
enum CliError {
    Usage(String),
    Invalid(String),
    Failure(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    fn invalid(message: impl Into<String>) -> Self {
        CliError::Invalid(message.into())
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError::Failure(message.into())
    }
}

type CliResult = Result<(), CliError>;

const TOP_USAGE: &str =
    "usage: soar <solve|sweep|compare|instance|experiment|online|fabric|serve|loadtest|trace|history> [options]
       soar --help

subcommands:
  solve       solve one serialized Instance with one solver
  sweep       optimal solutions for a list of budgets (single gather pass)
  compare     run several solvers on one instance
  instance    mint Instance JSON from topology/load/rate flags
  experiment  list, run and check the declarative experiments (registry names or spec files)
  online      replay dynamic churn timelines on the incremental re-optimization engine
  fabric      congestion-constrained placement on multi-root fabrics (solve, sweep)
  serve       long-running solve/churn daemon with resident tenants and admission control
  loadtest    drive a running server with synthesized churn; report throughput and latency
  trace       run one traced solve and write a Chrome trace_event JSON (Perfetto-loadable)
  history     trajectory reports and regression gates over artifact series";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(&args) {
        Ok(()) => 0,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{TOP_USAGE}");
            2
        }
        Err(CliError::Invalid(message)) => {
            eprintln!("error: {message}");
            2
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            1
        }
    };
    std::process::exit(code);
}

fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("instance") => cmd_instance(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("online") => cmd_online(&args[1..]),
        Some("fabric") => cmd_fabric(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadtest") => cmd_loadtest(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{TOP_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
        None => Err(CliError::usage("no subcommand given")),
    }
}

// ---------------------------------------------------------------------------
// Shared option plumbing
// ---------------------------------------------------------------------------

/// Pulls the value of `--flag value` style options out of an argument list.
struct Options<'a> {
    args: &'a [String],
    cursor: usize,
}

impl<'a> Options<'a> {
    fn new(args: &'a [String]) -> Self {
        Options { args, cursor: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.cursor)?;
        self.cursor += 1;
        Some(arg.as_str())
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, CliError> {
        let value = self
            .args
            .get(self.cursor)
            .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))?;
        self.cursor += 1;
        Ok(value.as_str())
    }
}

fn parse_list<T: std::str::FromStr>(value: &str, what: &str) -> Result<Vec<T>, CliError> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| CliError::usage(format!("invalid {what} `{part}`")))
        })
        .collect()
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::failure(format!("reading {path}: {e}")))
}

fn write_file(path: &str, contents: &str) -> CliResult {
    std::fs::write(path, contents).map_err(|e| CliError::failure(format!("writing {path}: {e}")))
}

fn read_instance(path: &str) -> Result<Instance, CliError> {
    serde_json::from_str::<Instance>(&read_file(path)?)
        .map_err(|e| CliError::failure(format!("{path} is not an Instance document: {e}")))
}

fn read_artifact(path: &str) -> Result<RunArtifact, CliError> {
    RunArtifact::from_json(&read_file(path)?)
        .map_err(|e| CliError::failure(format!("{path} is not a RunArtifact document: {e}")))
}

fn resolve_solver(name: &str) -> Result<Box<dyn Solver>, CliError> {
    solvers::by_name(name).ok_or_else(|| {
        CliError::failure(format!(
            "unknown solver `{name}` (registered: {})",
            solvers::NAMES.join(", ")
        ))
    })
}

fn print_report(report: &SolveReport) {
    println!(
        "{:<12} instance {:<24} cost {:>12.4}  normalized {:>8.5}  blue {:>4}/{:<4}  wall {:>9.3} ms",
        report.solver,
        report.instance,
        report.solution.cost,
        report.normalized_cost,
        report.solution.blue_used,
        report.solution.budget,
        report.wall_time.as_secs_f64() * 1e3,
    );
    if let Some(dp) = &report.dp {
        println!(
            "{:<12} dp: {} switches, {} cells, {:.1} kB tables",
            "",
            dp.n_switches,
            dp.table_cells,
            dp.table_bytes as f64 / 1e3
        );
    }
}

/// Provenance spec for artifacts produced from an explicit instance file.
fn adhoc_spec(
    command: &str,
    instance: &Instance,
    solver_names: Vec<String>,
    budgets: Vec<usize>,
) -> ExperimentSpec {
    ExperimentSpec::new(
        format!("adhoc-{command}"),
        format!("CLI {command} of instance `{}`", instance.label()),
        1,
        ExperimentKind::Adhoc {
            command: command.to_owned(),
            instance: instance.label().to_owned(),
            solvers: solver_names,
            budgets,
        },
    )
}

// ---------------------------------------------------------------------------
// solve / sweep / compare
// ---------------------------------------------------------------------------

fn cmd_solve(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut solver_name = "soar";
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--solver" | "-s" => solver_name = options.value_for("--solver")?,
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!("usage: soar solve --in <instance.json> [--solver <name>] [--out <report.json>]");
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "solve: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("solve needs --in <instance.json>"))?;
    let instance = read_instance(input)?;
    let solver = resolve_solver(solver_name)?;
    let report = solver.solve(&instance);
    print_report(&report);
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::failure(format!("serializing the report: {e}")))?;
        write_file(path, &(json + "\n"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut budgets: Option<Vec<usize>> = None;
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--budgets" | "-b" => {
                budgets = Some(parse_list(options.value_for("--budgets")?, "budget")?)
            }
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: soar sweep --in <instance.json> --budgets <k1,k2,...> [--out <artifact.json>]"
                );
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "sweep: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("sweep needs --in <instance.json>"))?;
    let budgets = budgets.ok_or_else(|| CliError::usage("sweep needs --budgets <k1,k2,...>"))?;
    if budgets.is_empty() {
        return Err(CliError::usage("sweep needs at least one budget"));
    }
    let instance = read_instance(input)?;
    let reports = soar::core::api::sweep_budgets(&instance, &budgets);

    let mut chart = Chart::new(
        format!("Budget sweep of `{}`", instance.label()),
        "k",
        "utilization complexity",
    );
    let mut cost = Series::new("SOAR (optimal)");
    let mut normalized = Series::new("normalized to all-red");
    for report in &reports {
        cost.push(report.solution.budget as f64, report.solution.cost);
        normalized.push(report.solution.budget as f64, report.normalized_cost);
    }
    chart.push(cost);
    chart.push(normalized);
    print!("{}", chart.to_table());

    if let Some(path) = out {
        let spec = adhoc_spec("sweep", &instance, vec!["soar".into()], budgets);
        let dp = reports.iter().find_map(|r| r.dp);
        let mut artifact = RunArtifact::new(spec, vec![chart], dp);
        artifact.reports = reports;
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut names: Vec<String> = vec!["soar".into(), "top".into(), "max-load".into()];
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--solvers" | "-s" => names = parse_list(options.value_for("--solvers")?, "solver")?,
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: soar compare --in <instance.json> [--solvers <a,b,...>] [--out <artifact.json>]"
                );
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "compare: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("compare needs --in <instance.json>"))?;
    let instance = read_instance(input)?;
    let mut chart = Chart::new(
        format!(
            "Solver comparison on `{}` (k = {})",
            instance.label(),
            instance.budget()
        ),
        "k",
        "utilization complexity",
    );
    let mut reports = Vec::new();
    for name in &names {
        let solver = resolve_solver(name)?;
        let report = solver.solve(&instance);
        print_report(&report);
        let mut series = Series::new(soar::exp::run::paper_label(name));
        series.push(instance.budget() as f64, report.solution.cost);
        chart.push(series);
        reports.push(report);
    }
    if let Some(path) = out {
        let budgets = vec![instance.budget()];
        let spec = adhoc_spec("compare", &instance, names, budgets);
        let dp = reports.iter().find_map(|r| r.dp);
        let mut artifact = RunArtifact::new(spec, vec![chart], dp);
        artifact.reports = reports;
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// instance
// ---------------------------------------------------------------------------

const INSTANCE_USAGE: &str = "usage: soar instance --topology <family> [sizing] [options]

families and their sizing flags:
  bt           --switches N             the paper's BT(N) (N counts the destination server)
  scale-free   --switches N             the paper's SF(N) preferential-attachment tree
  kary         --switches N [--arity A] complete A-ary tree over N switches (default arity 2)
  path         --switches N             a path (maximum height)
  star         --switches N             a star (maximum branching)
  random       --switches N             a uniformly random recursive tree
  bounded      --switches N --max-children C
  fat-tree     --aggs A --tors-per-agg T

options:
  --load DIST        power-law | power-law:min,max,mean | uniform | uniform:min,max |
                     constant:<c> | explicit:v1,v2,...   (no load when omitted)
  --placement WHERE  leaves (default) | all
  --rates SCHEME     constant[:w] | linear[:base,step] | exponential[:base,factor]
  --seed N           seed for all random draws (default 0)
  --budget K         the aggregation budget k (default 0)
  --label NAME       instance label (defaults to the topology label)
  --out FILE         write the Instance JSON there (stdout when omitted)

The emitted JSON feeds `soar solve|sweep|compare --in` unmodified.";

fn cmd_instance(args: &[String]) -> CliResult {
    let mut topology: Option<&str> = None;
    let mut switches: Option<usize> = None;
    let mut arity = 2usize;
    let mut max_children: Option<usize> = None;
    let mut aggs: Option<usize> = None;
    let mut tors_per_agg: Option<usize> = None;
    let mut load: Option<&str> = None;
    let mut placement_name = "leaves";
    let mut rates: Option<&str> = None;
    let mut seed = 0u64;
    let mut budget = 0usize;
    let mut label: Option<&str> = None;
    let mut out: Option<&str> = None;

    let parse_num = |flag: &str, value: &str| -> Result<usize, CliError> {
        value.parse::<usize>().map_err(|_| {
            CliError::usage(format!("{flag} needs a non-negative number, got `{value}`"))
        })
    };
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--topology" | "-t" => topology = Some(options.value_for("--topology")?),
            "--switches" | "-n" => {
                switches = Some(parse_num("--switches", options.value_for("--switches")?)?)
            }
            "--arity" => arity = parse_num("--arity", options.value_for("--arity")?)?,
            "--max-children" => {
                max_children = Some(parse_num(
                    "--max-children",
                    options.value_for("--max-children")?,
                )?)
            }
            "--aggs" => aggs = Some(parse_num("--aggs", options.value_for("--aggs")?)?),
            "--tors-per-agg" => {
                tors_per_agg = Some(parse_num(
                    "--tors-per-agg",
                    options.value_for("--tors-per-agg")?,
                )?)
            }
            "--load" | "-l" => load = Some(options.value_for("--load")?),
            "--placement" => placement_name = options.value_for("--placement")?,
            "--rates" | "-r" => rates = Some(options.value_for("--rates")?),
            "--seed" => {
                seed = options
                    .value_for("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("--seed needs a number"))?
            }
            "--budget" | "-k" => budget = parse_num("--budget", options.value_for("--budget")?)?,
            "--label" => label = Some(options.value_for("--label")?),
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!("{INSTANCE_USAGE}");
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "instance: unknown argument `{other}`"
                )))
            }
        }
    }

    let topology = topology.ok_or_else(|| {
        CliError::usage(
            "instance needs --topology <bt|scale-free|kary|path|star|random|bounded|fat-tree>",
        )
    })?;
    let need_switches = |switches: Option<usize>| -> Result<usize, CliError> {
        switches.ok_or_else(|| CliError::usage(format!("topology `{topology}` needs --switches N")))
    };
    let spec = match topology {
        "bt" => {
            let n = need_switches(switches)?;
            if n < 2 {
                return Err(CliError::usage(
                    "BT(n) counts the destination server, so it needs --switches >= 2",
                ));
            }
            TopologySpec::CompleteBinaryBt { n }
        }
        "scale-free" | "sf" => {
            let n = need_switches(switches)?;
            if n < 2 {
                return Err(CliError::usage(
                    "SF(n) counts the destination server, so it needs --switches >= 2",
                ));
            }
            TopologySpec::ScaleFreeSf { n }
        }
        "kary" => {
            let n_switches = need_switches(switches)?;
            if arity < 1 || n_switches < 1 {
                return Err(CliError::usage(
                    "kary needs --switches >= 1 and --arity >= 1",
                ));
            }
            TopologySpec::CompleteKary { arity, n_switches }
        }
        "path" | "star" | "random" => {
            let n_switches = need_switches(switches)?;
            if n_switches < 1 {
                return Err(CliError::usage(format!(
                    "topology `{topology}` needs --switches >= 1"
                )));
            }
            match topology {
                "path" => TopologySpec::Path { n_switches },
                "star" => TopologySpec::Star { n_switches },
                _ => TopologySpec::RandomRecursive { n_switches },
            }
        }
        "bounded" => {
            let n_switches = need_switches(switches)?;
            let max_children = max_children
                .ok_or_else(|| CliError::usage("topology `bounded` needs --max-children C"))?;
            if n_switches < 1 || max_children < 1 {
                return Err(CliError::usage(
                    "bounded needs --switches >= 1 and --max-children >= 1",
                ));
            }
            TopologySpec::RandomBoundedDegree {
                n_switches,
                max_children,
            }
        }
        "fat-tree" => {
            let aggs = aggs.ok_or_else(|| CliError::usage("topology `fat-tree` needs --aggs A"))?;
            let tors_per_agg = tors_per_agg
                .ok_or_else(|| CliError::usage("topology `fat-tree` needs --tors-per-agg T"))?;
            if aggs < 1 || tors_per_agg < 1 {
                return Err(CliError::usage(
                    "fat-tree needs --aggs >= 1 and --tors-per-agg >= 1",
                ));
            }
            TopologySpec::TwoTierFatTree { aggs, tors_per_agg }
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown topology family `{other}` \
                 (choose bt, scale-free, kary, path, star, random, bounded or fat-tree)"
            )))
        }
    };

    let placement = match placement_name {
        "leaves" => LoadPlacement::Leaves,
        "all" => LoadPlacement::AllSwitches,
        other => {
            return Err(CliError::usage(format!(
                "unknown placement `{other}` (choose leaves or all)"
            )))
        }
    };
    let mut builder = Instance::builder().topology(spec).seed(seed).budget(budget);
    if let Some(load) = load {
        builder = builder.loads(LoadSpec::parse(load).map_err(CliError::usage)?, placement);
    }
    if let Some(rates) = rates {
        builder = builder.rates(RateScheme::parse(rates).map_err(CliError::usage)?);
    }
    if let Some(label) = label {
        builder = builder.label(label);
    }
    let instance = builder
        .build()
        .map_err(|e| CliError::invalid(format!("instance configuration is invalid: {e}")))?;
    let json = serde_json::to_string_pretty(&instance)
        .map_err(|e| CliError::failure(format!("serializing the instance: {e}")))?
        + "\n";
    match out {
        Some(path) => {
            write_file(path, &json)?;
            eprintln!(
                "wrote {path}: `{}` ({} switches, k = {})",
                instance.label(),
                instance.n_switches(),
                instance.budget()
            );
        }
        None => print!("{json}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// experiment list / run / check
// ---------------------------------------------------------------------------

const EXPERIMENT_USAGE: &str = "usage: soar experiment list [--paper]
       soar experiment run <name|spec.json>... [--paper] [--reps N] [--out-dir DIR] [--csv]
       soar experiment check <artifact.json> --golden <golden.json> [--rel X] [--abs X] [--timing-rel X]

`run` arguments ending in .json (or containing a path separator) are loaded as
user-authored ExperimentSpec documents, validated (unknown solvers, empty
grids, aliasing seed strides, ... exit with code 2 and an actionable message)
and executed exactly like registry specs; `check` treats the resulting
artifacts identically to registry-produced ones.";

fn cmd_experiment(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("list") => cmd_experiment_list(&args[1..]),
        Some("run") => cmd_experiment_run(&args[1..]),
        Some("check") => cmd_experiment_check(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{EXPERIMENT_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown experiment subcommand `{other}`"
        ))),
        None => Err(CliError::usage(
            "experiment needs a subcommand (list, run, check)",
        )),
    }
}

fn parse_scale(args: &[String]) -> bool {
    args.iter().any(|a| a == "--paper")
}

fn cmd_experiment_list(args: &[String]) -> CliResult {
    let scale = if parse_scale(args) {
        Scale::Paper
    } else {
        Scale::Quick
    };
    for arg in args {
        if arg != "--paper" {
            return Err(CliError::usage(format!("list: unknown argument `{arg}`")));
        }
    }
    println!("{:<14} {:>4}  description", "name", "reps");
    for spec in registry::all(scale) {
        println!("{:<14} {:>4}  {}", spec.name, spec.repetitions, spec.title);
    }
    Ok(())
}

fn cmd_experiment_run(args: &[String]) -> CliResult {
    let mut names: Vec<&str> = Vec::new();
    let mut paper = false;
    let mut reps: Option<u64> = None;
    let mut out_dir = "artifacts";
    let mut csv = false;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--paper" => paper = true,
            "--reps" => {
                let parsed: u64 = options
                    .value_for("--reps")?
                    .parse()
                    .map_err(|_| CliError::usage("--reps needs a positive number"))?;
                if parsed == 0 {
                    return Err(CliError::usage("--reps needs at least one repetition"));
                }
                reps = Some(parsed);
            }
            "--out-dir" | "-o" => out_dir = options.value_for("--out-dir")?,
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("{EXPERIMENT_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("run: unknown argument `{flag}`")))
            }
            name => names.push(name),
        }
    }
    if names.is_empty() {
        return Err(CliError::usage(format!(
            "run needs at least one experiment name or spec file (registered: {})",
            registry::NAMES.join(", ")
        )));
    }
    let scale = if paper { Scale::Paper } else { Scale::Quick };
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError::failure(format!("creating {out_dir}: {e}")))?;
    for name in names {
        let from_file = is_spec_path(name);
        let mut spec = load_spec(name, scale)?;
        // For *registry* names the override skips single-shot specs (fig2,
        // fig3, fig11a, gather-bench): they average nothing, so changing their
        // repetition count would only make the stored spec deviate from goldens
        // without changing any value (same guard as
        // `soar_bench::ExperimentConfig::spec`). User spec files always honor
        // an explicit --reps — the author asked for it.
        if let Some(reps) = reps {
            if from_file || spec.repetitions != 1 {
                spec.repetitions = reps;
                // The override changes what validate() saw (e.g. a stride that
                // was fine for the file's repetition count may now alias), and
                // the artifact embeds the effective spec — so re-check it.
                if from_file {
                    spec.validate().map_err(|e| {
                        CliError::invalid(format!("{name} (with --reps {reps}): {e}"))
                    })?;
                }
            }
        }
        eprintln!(
            "running {} ({} repetitions, {} scale)",
            spec.name,
            spec.repetitions,
            if paper { "paper" } else { "quick" }
        );
        let artifact = spec.run();
        for chart in &artifact.charts {
            if csv {
                println!("# {}", chart.title);
                print!("{}", chart.to_csv());
            } else {
                println!("{}", chart.to_table());
            }
        }
        let path = format!("{}/{}.json", out_dir.trim_end_matches('/'), spec.name);
        write_file(&path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `true` when an `experiment run` argument denotes a spec *file* rather than a
/// registry name: anything ending in `.json` or containing a path separator
/// (registry names never do either, so the namespaces cannot collide).
fn is_spec_path(name: &str) -> bool {
    name.ends_with(".json") || name.contains('/') || name.contains(std::path::MAIN_SEPARATOR)
}

/// Resolves one `experiment run` argument: registry names come from the
/// compiled-in registry; paths are loaded as user-authored spec documents,
/// which are parsed and validated (both reject with exit code 2 — a malformed
/// spec is the CLI-file equivalent of a usage error).
fn load_spec(name: &str, scale: Scale) -> Result<ExperimentSpec, CliError> {
    if !is_spec_path(name) {
        return registry::by_name(name, scale).ok_or_else(|| {
            CliError::failure(format!(
                "unknown experiment `{name}` (registered: {}; paths ending in .json \
                 load user-authored spec files)",
                registry::NAMES.join(", ")
            ))
        });
    }
    let json = read_file(name)?;
    let spec = soar::exp::template::spec_from_document(&json, std::path::Path::new(name))
        .map_err(|e| CliError::invalid(format!("{name}: {e}")))?;
    spec.validate()
        .map_err(|e| CliError::invalid(format!("{name}: {e}")))?;
    Ok(spec)
}

fn cmd_experiment_check(args: &[String]) -> CliResult {
    let mut artifact_path: Option<&str> = None;
    let mut golden_path: Option<&str> = None;
    let mut tol = Tolerances::default();
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--golden" | "-g" => golden_path = Some(options.value_for("--golden")?),
            "--rel" => {
                tol.rel = options
                    .value_for("--rel")?
                    .parse()
                    .map_err(|_| CliError::usage("--rel needs a number"))?
            }
            "--abs" => {
                tol.abs = options
                    .value_for("--abs")?
                    .parse()
                    .map_err(|_| CliError::usage("--abs needs a number"))?
            }
            "--timing-rel" => {
                tol.timing_rel = Some(
                    options
                        .value_for("--timing-rel")?
                        .parse()
                        .map_err(|_| CliError::usage("--timing-rel needs a number"))?,
                )
            }
            "--help" | "-h" => {
                println!("{EXPERIMENT_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("check: unknown argument `{flag}`")))
            }
            path if artifact_path.is_none() => artifact_path = Some(path),
            other => {
                return Err(CliError::usage(format!(
                    "check takes one artifact path, got a second: `{other}`"
                )))
            }
        }
    }
    let artifact_path =
        artifact_path.ok_or_else(|| CliError::usage("check needs an artifact path"))?;
    let golden_path = golden_path.ok_or_else(|| CliError::usage("check needs --golden <path>"))?;
    let new = read_artifact(artifact_path)?;
    let golden = read_artifact(golden_path)?;
    let report = diff(&golden, &new, &tol);
    if report.is_match() {
        println!(
            "OK: {artifact_path} matches {golden_path} (rel {}, abs {})",
            tol.rel, tol.abs
        );
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "{artifact_path} deviates from {golden_path}: {report}"
        )))
    }
}

// ---------------------------------------------------------------------------
// online run / replay
// ---------------------------------------------------------------------------

const ONLINE_USAGE: &str = "usage: soar online run [options]
       soar online replay <artifact.json> [--csv]

`run` builds a BT(--switches) base snapshot, generates a seeded churn timeline
(tenant arrivals/departures, single-leaf rate changes) and replays it on the
incremental re-optimization engine — every epoch verified bit-identical to a
from-scratch solve. Prints the placement trajectory (cost over time, placement
moves, DP cell writes incremental vs from-scratch).

run options:
  --switches N       BT(N) base topology, counts the destination (default 128)
  --budget K         starting aggregation budget (default 16)
  --epochs E         epochs to replay (default 12)
  --seed S           base seed of instance + timeline draws (default 0)
  --reps R           averaged repetitions (default 1)
  --arrivals A       expected tenant arrivals per epoch (default 1.0)
  --lifetime L       mean tenant lifetime in epochs (default 4.0)
  --rate-changes C   expected single-leaf rate re-draws per epoch (default 2.0)
  --tenant-leaves T  leaves per tenant footprint (default 4)
  --load DIST        background load distribution (soar instance syntax; default uniform)
  --csv              print charts as CSV instead of aligned tables
  --out FILE         write the RunArtifact JSON there

`replay` re-runs the dynamic spec embedded in an artifact and checks the fresh
trajectory against the stored one (exit 1 on deviation) — the determinism gate
behind the online-smoke CI job.";

fn cmd_online(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("run") => cmd_online_run(&args[1..]),
        Some("replay") => cmd_online_replay(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{ONLINE_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown online subcommand `{other}`"
        ))),
        None => Err(CliError::usage("online needs a subcommand (run, replay)")),
    }
}

fn cmd_online_run(args: &[String]) -> CliResult {
    let mut switches = 128usize;
    let mut budget = 16usize;
    let mut epochs = 12usize;
    let mut seed = 0u64;
    let mut reps = 1u64;
    let mut model = soar::multitenant::churn::ChurnModel::paper_default();
    let mut load: Option<&str> = None;
    let mut csv = false;
    let mut out: Option<&str> = None;

    let parse_num = |flag: &str, value: &str| -> Result<usize, CliError> {
        value
            .parse::<usize>()
            .map_err(|_| CliError::usage(format!("{flag} needs a non-negative number")))
    };
    let parse_rate = |flag: &str, value: &str| -> Result<f64, CliError> {
        value
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| CliError::usage(format!("{flag} needs a non-negative number")))
    };
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--switches" | "-n" => {
                switches = parse_num("--switches", options.value_for("--switches")?)?
            }
            "--budget" | "-k" => budget = parse_num("--budget", options.value_for("--budget")?)?,
            "--epochs" | "-e" => epochs = parse_num("--epochs", options.value_for("--epochs")?)?,
            "--seed" => {
                seed = options
                    .value_for("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("--seed needs a number"))?
            }
            "--reps" => {
                reps = options
                    .value_for("--reps")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&r| r > 0)
                    .ok_or_else(|| CliError::usage("--reps needs a positive number"))?
            }
            "--arrivals" => {
                model.arrivals_per_epoch =
                    parse_rate("--arrivals", options.value_for("--arrivals")?)?
            }
            "--lifetime" => {
                let value = parse_rate("--lifetime", options.value_for("--lifetime")?)?;
                if value < 1.0 {
                    return Err(CliError::usage("--lifetime must be at least one epoch"));
                }
                model.mean_lifetime = value;
            }
            "--rate-changes" => {
                model.rate_changes_per_epoch =
                    parse_rate("--rate-changes", options.value_for("--rate-changes")?)?
            }
            "--tenant-leaves" => {
                let value = parse_num("--tenant-leaves", options.value_for("--tenant-leaves")?)?;
                if value == 0 {
                    return Err(CliError::usage("--tenant-leaves must be at least 1"));
                }
                model.tenant_leaves = value;
            }
            "--load" | "-l" => load = Some(options.value_for("--load")?),
            "--csv" => csv = true,
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!("{ONLINE_USAGE}");
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "online run: unknown argument `{other}`"
                )))
            }
        }
    }
    if switches < 2 {
        return Err(CliError::usage(
            "BT(n) counts the destination server, so --switches must be >= 2",
        ));
    }
    if epochs == 0 {
        return Err(CliError::usage("--epochs must be at least 1"));
    }
    let background = match load {
        Some(text) => LoadSpec::parse(text).map_err(CliError::usage)?,
        None => LoadSpec::paper_uniform(),
    };
    model.load = background.clone();
    let mut spec = ExperimentSpec::new(
        "online-run",
        format!("CLI dynamic churn replay over BT({switches})"),
        reps,
        ExperimentKind::DynamicChurn {
            title: format!("Dynamic churn on BT({switches}), k = {budget}"),
            scenario: soar::exp::ScenarioSpec::bt(
                switches,
                background,
                soar::topology::rates::RateScheme::paper_constant(),
                seed,
            ),
            budget,
            epochs,
            model,
            seed_stride: 61,
        },
    );
    spec.base_seed = seed;
    spec.validate()
        .map_err(|e| CliError::invalid(format!("online run configuration: {e}")))?;
    let artifact = spec.run();
    print_charts(&artifact, csv);
    if let Some(path) = out {
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn print_charts(artifact: &RunArtifact, csv: bool) {
    for chart in &artifact.charts {
        if csv {
            println!("# {}", chart.title);
            print!("{}", chart.to_csv());
        } else {
            println!("{}", chart.to_table());
        }
    }
}

fn cmd_online_replay(args: &[String]) -> CliResult {
    let mut path: Option<&str> = None;
    let mut csv = false;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("{ONLINE_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!(
                    "online replay: unknown argument `{flag}`"
                )))
            }
            p if path.is_none() => path = Some(p),
            other => {
                return Err(CliError::usage(format!(
                    "replay takes one artifact path, got a second: `{other}`"
                )))
            }
        }
    }
    let path = path.ok_or_else(|| CliError::usage("replay needs an artifact path"))?;
    let stored = read_artifact(path)?;
    if !matches!(stored.spec.kind, ExperimentKind::DynamicChurn { .. }) {
        return Err(CliError::invalid(format!(
            "{path} is not a dynamic-churn artifact (spec `{}` has a different kind)",
            stored.spec.name
        )));
    }
    stored
        .spec
        .validate()
        .map_err(|e| CliError::invalid(format!("{path}: embedded spec is invalid: {e}")))?;
    eprintln!(
        "replaying {} ({} repetitions)",
        stored.spec.name, stored.spec.repetitions
    );
    let fresh = stored.spec.run();
    print_charts(&fresh, csv);
    let report = diff(&stored, &fresh, &Tolerances::default());
    if report.is_match() {
        println!("OK: replay of {path} reproduced the stored trajectory");
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "replay of {path} deviates from the stored trajectory: {report}"
        )))
    }
}

// ---------------------------------------------------------------------------
// fabric solve / sweep
// ---------------------------------------------------------------------------

const FABRIC_USAGE: &str = "usage: soar fabric solve [options]
       soar fabric sweep --bounds C1,C2,... [options]

Congestion-constrained placement on a multi-root fabric (the sequel paper's
scenario): multipath routing decomposes the fabric into vertex-disjoint
per-core aggregation trees. `solve` places at most --budget blue switches
fabric-wide with at most --bound per core tree, weighting every core up-link's
utilization by --gamma in the objective. `sweep` re-solves the same fabric
under each bound of --bounds and charts cost and congestion against the bound.
Both print chart tables and write standard RunArtifacts (usable with
`soar experiment check` and `soar history`).

topology (the fat-tree family is the default; --roots switches to the forest):
  --cores C          fat-tree core switches (default 2)
  --pods P           fat-tree pods, assigned to cores round-robin (default 4)
  --aggs A           aggregation switches per pod (default 2)
  --tors T           ToR switches per aggregation switch (default 2)
  --roots R          multi-root forest: R disjoint complete binary trees
  --tree-switches N  switches per forest tree (default 15; needs --roots)

scenario:
  --load DIST        leaf load distribution (soar instance syntax; default uniform)
  --rates SCHEME     constant[:w] | linear[:base,step] | exponential[:base,factor]
  --seed S           base seed of the per-tree load draws (default 0)
  --budget K         fabric-wide blue budget (default 4)
  --bound C          per-core-tree blue cap (solve only; default 2)
  --bounds LIST      congestion-bound grid (sweep only; required)
  --gamma G          congestion weight γ ≥ 0 (default 0.5)
  --solvers LIST     solve only: fabric solvers to run, default fabric-soar
                     (registered: fabric-soar, fabric-brute)
  --reps R           averaged repetitions (default 1)
  --csv              print charts as CSV instead of aligned tables
  --out FILE         write the RunArtifact JSON there";

fn cmd_fabric(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("solve") => cmd_fabric_run(&args[1..], false),
        Some("sweep") => cmd_fabric_run(&args[1..], true),
        Some("--help") | Some("-h") => {
            println!("{FABRIC_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown fabric subcommand `{other}`"
        ))),
        None => Err(CliError::usage("fabric needs a subcommand (solve, sweep)")),
    }
}

/// `soar fabric solve` and `soar fabric sweep` share every flag except the
/// congestion-bound shape (one `--bound` vs a `--bounds` grid) and `--solvers`,
/// so both run through here; `sweep` selects the grid kind.
fn cmd_fabric_run(args: &[String], sweep: bool) -> CliResult {
    use soar::fabric::{FabricSpec, FabricTopology};

    let command = if sweep {
        "fabric sweep"
    } else {
        "fabric solve"
    };
    let mut cores: Option<usize> = None;
    let mut pods: Option<usize> = None;
    let mut aggs: Option<usize> = None;
    let mut tors: Option<usize> = None;
    let mut roots: Option<usize> = None;
    let mut tree_switches: Option<usize> = None;
    let mut load: Option<&str> = None;
    let mut rates: Option<&str> = None;
    let mut seed = 0u64;
    let mut budget = 4usize;
    let mut bound: Option<usize> = None;
    let mut bounds: Option<Vec<usize>> = None;
    let mut gamma = 0.5f64;
    let mut reps = 1u64;
    let mut solvers: Option<&str> = None;
    let mut csv = false;
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(flag) = options.next() {
        match flag {
            "--cores" => cores = Some(parse_num(options.value_for(flag)?, flag)?),
            "--pods" => pods = Some(parse_num(options.value_for(flag)?, flag)?),
            "--aggs" => aggs = Some(parse_num(options.value_for(flag)?, flag)?),
            "--tors" => tors = Some(parse_num(options.value_for(flag)?, flag)?),
            "--roots" => roots = Some(parse_num(options.value_for(flag)?, flag)?),
            "--tree-switches" => tree_switches = Some(parse_num(options.value_for(flag)?, flag)?),
            "--load" | "-l" => load = Some(options.value_for(flag)?),
            "--rates" | "-r" => rates = Some(options.value_for(flag)?),
            "--seed" => seed = parse_num(options.value_for(flag)?, flag)?,
            "--budget" | "-k" => budget = parse_num(options.value_for(flag)?, flag)?,
            "--bound" | "-c" => bound = Some(parse_num(options.value_for(flag)?, flag)?),
            "--bounds" => bounds = Some(parse_list(options.value_for(flag)?, "congestion bound")?),
            "--gamma" | "-g" => {
                gamma = options
                    .value_for(flag)?
                    .parse()
                    .map_err(|_| CliError::usage("--gamma needs a number"))?
            }
            "--solvers" => solvers = Some(options.value_for(flag)?),
            "--reps" => {
                reps = options
                    .value_for(flag)?
                    .parse::<u64>()
                    .ok()
                    .filter(|&r| r > 0)
                    .ok_or_else(|| CliError::usage("--reps needs a positive number"))?
            }
            "--csv" => csv = true,
            "--out" | "-o" => out = Some(options.value_for(flag)?),
            "--help" | "-h" => {
                println!("{FABRIC_USAGE}");
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "{command}: unknown argument `{other}`"
                )))
            }
        }
    }

    let fat_tree_flags = cores.is_some() || pods.is_some() || aggs.is_some() || tors.is_some();
    if roots.is_some() && fat_tree_flags {
        return Err(CliError::usage(
            "--roots selects the multi-root forest family; it cannot be combined \
             with fat-tree dimensions (--cores/--pods/--aggs/--tors)",
        ));
    }
    if tree_switches.is_some() && roots.is_none() {
        return Err(CliError::usage(
            "--tree-switches only applies to the forest family (give --roots too)",
        ));
    }
    if sweep {
        if bound.is_some() {
            return Err(CliError::usage(
                "fabric sweep varies the congestion bound — give the grid with \
                 --bounds, not a single --bound",
            ));
        }
        if solvers.is_some() {
            return Err(CliError::usage(
                "fabric sweep always runs fabric-soar; --solvers applies to fabric solve",
            ));
        }
    } else if bounds.is_some() {
        return Err(CliError::usage(
            "--bounds belongs to fabric sweep; fabric solve takes one --bound",
        ));
    }

    let topology = match roots {
        Some(roots) => FabricTopology::MultiRootForest {
            roots,
            switches_per_tree: tree_switches.unwrap_or(15),
        },
        None => FabricTopology::MultiCoreFatTree {
            cores: cores.unwrap_or(2),
            pods: pods.unwrap_or(4),
            aggs_per_pod: aggs.unwrap_or(2),
            tors_per_agg: tors.unwrap_or(2),
        },
    };
    let load = match load {
        Some(text) => LoadSpec::parse(text).map_err(CliError::usage)?,
        None => LoadSpec::paper_uniform(),
    };
    let rates = match rates {
        Some(text) => RateScheme::parse(text).map_err(CliError::usage)?,
        None => RateScheme::paper_constant(),
    };
    let bounds = if sweep {
        Some(bounds.ok_or_else(|| CliError::usage("fabric sweep needs --bounds C1,C2,..."))?)
    } else {
        None
    };
    let fabric = FabricSpec {
        topology,
        load,
        rates,
        seed,
        budget,
        // For a sweep the runner re-instantiates the fabric at each grid
        // point; the embedded bound is the widest one so the spec validates
        // self-consistently (mirrors the registry's sweep specs).
        congestion_bound: match &bounds {
            Some(grid) => bound.unwrap_or_else(|| grid.iter().copied().max().unwrap_or(1)),
            None => bound.unwrap_or(2),
        },
        congestion_weight: gamma,
    };
    let label = fabric.topology.label();
    let kind = match bounds {
        Some(bounds) => ExperimentKind::FabricCongestionSweep {
            title: format!("Fabric {label} vs congestion bound"),
            fabric,
            bounds,
            seed_stride: 67,
        },
        None => {
            let solvers: Vec<String> = match solvers {
                Some(text) => parse_list(text, "fabric solver name")?,
                None => vec!["fabric-soar".to_owned()],
            };
            ExperimentKind::FabricSolve {
                title: format!("Fabric {label}, k = {budget}"),
                fabric,
                solvers,
                seed_stride: 59,
            }
        }
    };
    let spec = ExperimentSpec::new(
        if sweep {
            "fabric-bound-sweep"
        } else {
            "fabric-solve"
        },
        format!("CLI {command} of {label}"),
        reps,
        kind,
    );
    spec.validate()
        .map_err(|e| CliError::invalid(format!("{command} configuration: {e}")))?;
    let artifact = spec.run();
    print_charts(&artifact, csv);
    if let Some(path) = out {
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve / loadtest
// ---------------------------------------------------------------------------

const SERVE_USAGE: &str = "usage: soar serve [--addr HOST:PORT] [--queue-cap N] [--inflight-cap N]
                  [--max-tenants N] [--batch-cap N] [--metrics-out FILE]
                  [--state-dir DIR [--recover] [--snapshot-every N]]
                  [--write-deadline-ms MS] [--obs-addr HOST:PORT]

Runs the long-running solve/churn daemon: clients register tenants (each one a
resident DynamicInstance), stream churn batches and request warm re-solves over
a length-prefixed binary protocol. A full global queue or a tenant at its
in-flight cap sheds with an explicit Overloaded response instead of buffering.
Blocks until a client sends Shutdown; then drains, optionally writes the final
metrics snapshot JSON to --metrics-out, and exits 0.

--state-dir makes tenant state crash-safe: every accepted register/evict/churn
batch is appended to a CRC-checked write-ahead log before it is applied, with
a tenant snapshot every --snapshot-every records. --recover replays
snapshot+WAL from that directory on startup (post-recovery solves are
bit-identical to an uninterrupted run); without it an existing state dir is
replaced by a fresh empty log. --write-deadline-ms bounds how long one slow
reader may block a response write (0 = no deadline) before the connection is
dropped and counted in io_errors.

--obs-addr additionally serves Prometheus text-format exposition on a second
listener: GET /metrics returns the same frozen snapshot the binary Metrics
request answers from (counters, gauges, per-tenant breakdown, latency
summaries), followed by the process-wide solver counters and span-ring
gauges of the global soar-obs registry.";

fn cmd_serve(args: &[String]) -> CliResult {
    let mut config = soar::serve::ServeConfig {
        addr: "127.0.0.1:7171".to_owned(),
        ..soar::serve::ServeConfig::default()
    };
    let mut metrics_out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(flag) = options.next() {
        match flag {
            "--addr" => config.addr = options.value_for(flag)?.to_owned(),
            "--queue-cap" => config.queue_cap = parse_num(options.value_for(flag)?, flag)?,
            "--inflight-cap" => {
                config.tenant_inflight_cap = parse_num(options.value_for(flag)?, flag)?
            }
            "--max-tenants" => config.max_tenants = parse_num(options.value_for(flag)?, flag)?,
            "--batch-cap" => config.batch_cap = parse_num(options.value_for(flag)?, flag)?,
            "--metrics-out" => metrics_out = Some(options.value_for(flag)?),
            "--state-dir" => {
                config.state_dir = Some(std::path::PathBuf::from(options.value_for(flag)?))
            }
            "--recover" => config.recover = true,
            "--snapshot-every" => {
                config.snapshot_every = parse_num(options.value_for(flag)?, flag)?
            }
            "--write-deadline-ms" => {
                let ms: u64 = parse_num(options.value_for(flag)?, flag)?;
                config.write_deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--obs-addr" => config.obs_addr = Some(options.value_for(flag)?.to_owned()),
            "--help" | "-h" => {
                println!("{SERVE_USAGE}");
                return Ok(());
            }
            other => return Err(CliError::usage(format!("unknown serve flag `{other}`"))),
        }
    }
    if config.recover && config.state_dir.is_none() {
        return Err(CliError::usage(
            "--recover needs --state-dir (there is nothing to recover from)",
        ));
    }
    let handle = soar::serve::start(config.clone())
        .map_err(|e| CliError::failure(format!("binding {}: {e}", config.addr)))?;
    println!("soar serve listening on {}", handle.addr());
    if let Some(obs) = handle.obs_addr() {
        println!("metrics exposition on http://{obs}/metrics");
    }
    let snapshot = handle.join();
    println!(
        "served {} requests ({} events applied, {} solves, {} sheds, {} errors)",
        snapshot.requests,
        snapshot.events_applied,
        snapshot.solves,
        snapshot.sheds(),
        snapshot.errors
    );
    if let Some(path) = metrics_out {
        let json = serde_json::to_string_pretty(&snapshot)
            .map_err(|e| CliError::failure(format!("encoding metrics: {e}")))?;
        write_file(path, &json)?;
        println!("metrics snapshot written to {path}");
    }
    Ok(())
}

const LOADTEST_USAGE: &str = "usage: soar loadtest --addr HOST:PORT [--tenants N] [--switches N]
                  [--budget K] [--connections N] [--window N] [--events-per-batch N]
                  [--batches N] [--solve-every N] [--rate EVENTS_PER_SEC] [--seed S]
                  [--out BENCH_serve.json] [--shutdown] [--obs-addr HOST:PORT]
                  [--chaos | --resilient] [--timeout-ms MS] [--backoff-base-ms MS]
                  [--backoff-cap-ms MS] [--max-attempts N] [--stall-ms MS]
                  [--assert-zero-sheds] [--assert-sheds] [--assert-no-loss]

Drives a running `soar serve` with synthesized churn: registers --tenants
resident instances, streams --batches churn batches (ChurnStream epochs of
about --events-per-batch events) over --connections pipelined connections and
interleaves a warm solve every --solve-every batches. Default is a closed loop
with --window requests in flight per connection; --rate switches to an open
loop that injects on a wall-clock schedule and expects the server to shed what
it cannot absorb. Prints throughput and client-side latency percentiles, and
with --out writes the gated artifact for `soar history check`. --shutdown
sends Shutdown when done. The --assert-* flags turn expectations about sheds
into exit codes for CI.

--resilient switches every connection to the fault-tolerant driver:
per-request timeouts (--timeout-ms), reconnect with capped exponential backoff
(--backoff-base-ms doubling up to --backoff-cap-ms, --max-attempts per batch),
and per-tenant sequence numbers so unacknowledged batches replay idempotently
(the server dedupes). --chaos additionally injects faults around the real
traffic — connection drops before/after send, torn frames, undecodable frames,
and --stall-ms slow-reader stalls — while keeping exact accounting: every
batch ends applied exactly once or explicitly lost; --assert-no-loss turns any
lost or unaccounted batch into exit code 1. In these modes --out writes the
BENCH_chaos.json artifact instead (lost/unaccounted batches gate exactly).

--obs-addr names the server's Prometheus exposition listener (its
`serve --obs-addr`): after the run quiesces, the client scrapes /metrics and
fails with exit 1 if any scraped counter disagrees with the binary metrics
snapshot — the end-to-end consistency check of the obs-smoke CI job.";

fn cmd_loadtest(args: &[String]) -> CliResult {
    let mut config = soar::loadtest::LoadtestConfig::default();
    let mut out: Option<&str> = None;
    let mut assert_zero_sheds = false;
    let mut assert_sheds = false;
    let mut assert_no_loss = false;
    let mut stall_ms: Option<u64> = None;
    let mut options = Options::new(args);
    while let Some(flag) = options.next() {
        match flag {
            "--addr" => {
                let value = options.value_for(flag)?;
                config.addr = value
                    .parse()
                    .map_err(|_| CliError::usage(format!("invalid address `{value}`")))?;
            }
            "--tenants" => config.tenants = parse_num(options.value_for(flag)?, flag)?,
            "--switches" => config.switches = parse_num(options.value_for(flag)?, flag)?,
            "--budget" => config.budget = parse_num(options.value_for(flag)?, flag)?,
            "--connections" => config.connections = parse_num(options.value_for(flag)?, flag)?,
            "--window" => config.window = parse_num(options.value_for(flag)?, flag)?,
            "--events-per-batch" => {
                config.events_per_batch = parse_num(options.value_for(flag)?, flag)?
            }
            "--batches" => config.batches = parse_num(options.value_for(flag)?, flag)?,
            "--solve-every" => config.solve_every = parse_num(options.value_for(flag)?, flag)?,
            "--rate" => {
                let value = options.value_for(flag)?;
                config.rate = value
                    .parse::<f64>()
                    .map_err(|_| CliError::usage(format!("invalid rate `{value}`")))?;
            }
            "--seed" => config.seed = parse_num(options.value_for(flag)?, flag)?,
            "--out" => out = Some(options.value_for(flag)?),
            "--shutdown" => config.shutdown = true,
            "--obs-addr" => {
                let value = options.value_for(flag)?;
                config.obs_addr = Some(
                    value
                        .parse()
                        .map_err(|_| CliError::usage(format!("invalid address `{value}`")))?,
                );
            }
            "--chaos" => config.chaos = Some(soar::loadtest::ChaosConfig::standard()),
            "--resilient" => {
                config
                    .chaos
                    .get_or_insert_with(soar::loadtest::ChaosConfig::default);
            }
            "--timeout-ms" => {
                let ms: u64 = parse_num(options.value_for(flag)?, flag)?;
                config.request_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            "--backoff-base-ms" => {
                let ms: u64 = parse_num(options.value_for(flag)?, flag)?;
                config.backoff_base = std::time::Duration::from_millis(ms.max(1));
            }
            "--backoff-cap-ms" => {
                let ms: u64 = parse_num(options.value_for(flag)?, flag)?;
                config.backoff_cap = std::time::Duration::from_millis(ms.max(1));
            }
            "--max-attempts" => config.max_attempts = parse_num(options.value_for(flag)?, flag)?,
            "--stall-ms" => stall_ms = Some(parse_num(options.value_for(flag)?, flag)?),
            "--assert-zero-sheds" => assert_zero_sheds = true,
            "--assert-sheds" => assert_sheds = true,
            "--assert-no-loss" => assert_no_loss = true,
            "--help" | "-h" => {
                println!("{LOADTEST_USAGE}");
                return Ok(());
            }
            other => return Err(CliError::usage(format!("unknown loadtest flag `{other}`"))),
        }
    }
    if let (Some(ms), Some(chaos)) = (stall_ms, config.chaos.as_mut()) {
        chaos.stall_for = std::time::Duration::from_millis(ms);
    }
    let report = soar::loadtest::run(&config)
        .map_err(|e| CliError::failure(format!("loadtest against {}: {e}", config.addr)))?;
    print!("{}", report.render());
    if let Some(path) = out {
        let artifact = if config.chaos.is_some() {
            soar::loadtest::chaos_artifact(&config, &report)
        } else {
            soar::loadtest::artifact(&config, &report)
        };
        write_file(path, &artifact.to_json())?;
        println!("artifact written to {path}");
    }
    if assert_no_loss {
        let Some(r) = &report.resilience else {
            return Err(CliError::usage(
                "--assert-no-loss needs --chaos or --resilient".to_owned(),
            ));
        };
        if r.batches_lost > 0 || r.unaccounted() > 0 {
            return Err(CliError::failure(format!(
                "delivery accounting failed: {} lost, {} unaccounted of {} batches",
                r.batches_lost,
                r.unaccounted(),
                r.batches_generated
            )));
        }
    }
    if assert_zero_sheds && report.sheds > 0 {
        return Err(CliError::failure(format!(
            "expected zero sheds at this load, saw {}",
            report.sheds
        )));
    }
    if assert_sheds && report.sheds == 0 {
        return Err(CliError::failure(
            "expected the overloaded run to shed, but nothing was shed".to_owned(),
        ));
    }
    // Shed churn batches break stream continuity (a dropped TenantArrive makes
    // a later TenantDepart fail), so error responses only fail the run when
    // nothing was shed — in a clean run they indicate a real bug.
    if report.errors > 0 && report.sheds == 0 {
        return Err(CliError::failure(format!(
            "{} requests answered with errors",
            report.errors
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------------

const TRACE_USAGE: &str = "usage: soar trace [--switches N] [--budget K] [--out FILE]
                  [--assert-coverage PCT]

Runs one warm-workspace solve of the standard gather-bench instance family
(BT(--switches) with power-law leaf loads, default 4096 switches at budget 16)
with span tracing enabled, then writes the recorded spans as a Chrome
trace_event JSON document (--out, default soar-trace.json) loadable in
https://ui.perfetto.dev or chrome://tracing. Prints the phase breakdown of the
root `solve` span — workspace reset, per-level gather, traceback — and the
fraction of the solve's wall time its direct children cover.

--assert-coverage fails with exit 1 when that fraction falls below PCT percent
(the obs-smoke CI job gates at 95).";

fn cmd_trace(args: &[String]) -> CliResult {
    let mut switches: usize = 4096;
    let mut budget: usize = 16;
    let mut out_path = "soar-trace.json".to_owned();
    let mut assert_coverage: Option<f64> = None;
    let mut options = Options::new(args);
    while let Some(flag) = options.next() {
        match flag {
            "--switches" | "-n" => switches = parse_num(options.value_for(flag)?, flag)?,
            "--budget" | "-k" => budget = parse_num(options.value_for(flag)?, flag)?,
            "--out" | "-o" => out_path = options.value_for(flag)?.to_owned(),
            "--assert-coverage" => {
                let value = options.value_for(flag)?;
                let pct: f64 = value.parse().map_err(|_| {
                    CliError::usage(format!("invalid coverage percentage `{value}`"))
                })?;
                assert_coverage = Some(pct / 100.0);
            }
            "--help" | "-h" => {
                println!("{TRACE_USAGE}");
                return Ok(());
            }
            other => return Err(CliError::usage(format!("unknown trace flag `{other}`"))),
        }
    }
    if switches < 2 {
        return Err(CliError::usage("--switches must be at least 2"));
    }

    let instance = soar::exp::perf::gather_bench_instance_with_budget(switches, budget);
    let tree = instance.tree();
    let k = instance.budget();

    // One untimed warm-up outside the trace so the recorded solve is the
    // steady state (no arena growth spans distorting the phase breakdown),
    // then the traced solve under a root span.
    let mut ws = soar::core::workspace::SolverWorkspace::new();
    ws.gather_auto(tree, k);
    soar::obs::set_tracing(true);
    let (cost, blue) = {
        let _solve = soar_obs::span!("solve", tree.n_switches());
        ws.gather_auto(tree, k);
        ws.trace_best(tree)
    };
    soar::obs::set_tracing(false);

    let threads = soar::obs::span::snapshot();
    write_file(&out_path, &soar::obs::trace::chrome_trace_json(&threads))?;

    let spans = soar::obs::trace::complete_spans(&threads);
    let root = spans
        .iter()
        .filter(|s| s.name == "solve")
        .max_by_key(|s| s.dur_ns)
        .ok_or_else(|| CliError::failure("no root `solve` span was recorded"))?;
    println!(
        "solved BT family, {} switches, k = {k}: cost {cost:.3} with {blue} blue switches",
        tree.n_switches()
    );
    println!(
        "trace written to {out_path} ({} spans across {} threads)",
        spans.len(),
        threads.iter().filter(|t| !t.events.is_empty()).count()
    );

    // Phase breakdown: the root's direct children on its own thread, grouped
    // by name in first-seen order. Worker-thread stripe spans overlap these
    // in wall time, so coverage is measured on the root thread only.
    let mut phases: Vec<(&str, u64, usize)> = Vec::new();
    let mut covered: u64 = 0;
    for span in spans.iter().filter(|s| {
        s.tid == root.tid
            && s.depth == 1
            && s.ts_ns >= root.ts_ns
            && s.ts_ns <= root.ts_ns + root.dur_ns
    }) {
        covered += span.dur_ns;
        match phases.iter_mut().find(|(name, ..)| *name == span.name) {
            Some((_, dur, count)) => {
                *dur += span.dur_ns;
                *count += 1;
            }
            None => phases.push((span.name, span.dur_ns, 1)),
        }
    }
    println!(
        "phase breakdown of the {:.3} ms solve:",
        root.dur_ns as f64 / 1e6
    );
    for (name, dur_ns, count) in &phases {
        println!(
            "  {name:<16} {:>10.3} ms  ({count:>3} spans, {:>5.1}% of the solve)",
            *dur_ns as f64 / 1e6,
            100.0 * *dur_ns as f64 / root.dur_ns.max(1) as f64,
        );
    }
    let coverage = covered as f64 / root.dur_ns.max(1) as f64;
    println!(
        "span coverage of the solve wall time: {:.1}%",
        coverage * 100.0
    );
    if let Some(min) = assert_coverage {
        if coverage < min {
            return Err(CliError::failure(format!(
                "span coverage {:.1}% is below the required {:.1}%",
                coverage * 100.0,
                min * 100.0
            )));
        }
    }
    Ok(())
}

/// Parses any unsigned integer flag value.
fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse::<T>()
        .map_err(|_| CliError::usage(format!("invalid value `{value}` for {flag}")))
}

// ---------------------------------------------------------------------------
// history report / check
// ---------------------------------------------------------------------------

const HISTORY_USAGE: &str = "usage: soar history report <artifact.json>...
       soar history report --dir <DIR> [--spec NAME]
       soar history check <new.json> --baseline <baseline.json> [--max-regress 25%] [--exact-abs X]

`report` aligns an ordered series of artifacts of one spec (oldest first) by
chart point and prints every metric's trajectory, newest delta and best-so-far.
With --dir it scans a directory of nightly-trend artifact sets instead: every
*.json artifact in DIR and its immediate subdirectories (sorted by path, so
date-stamped nightly directories read oldest first) is grouped by spec name and
rendered as one long-horizon trajectory per spec (--spec restricts to one).
Non-artifact JSON files (e.g. RUN_STAMP.json) are skipped with a note.
`check` gates the new artifact against the baseline: wall-clock metrics may
drift up to --max-regress (relative, default 25%), every other metric — costs,
allocation counts, footprints — must not increase at all. Improvements always
pass; a regression exits with code 1.";

fn cmd_history(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("report") => cmd_history_report(&args[1..]),
        Some("check") => cmd_history_check(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{HISTORY_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown history subcommand `{other}`"
        ))),
        None => Err(CliError::usage(
            "history needs a subcommand (report, check)",
        )),
    }
}

/// Parses a tolerance given either as a bare fraction (`0.25`) or as a
/// percentage (`25%`). A percent-less value above 1 is almost certainly a
/// forgotten `%` (`--max-regress 25` would mean a 2500 % headroom and silently
/// neuter the gate), so it is rejected with a hint.
fn parse_fraction(value: &str, flag: &str) -> Result<f64, CliError> {
    let (digits, percent) = match value.strip_suffix('%') {
        Some(digits) => (digits, true),
        None => (value, false),
    };
    let parsed: f64 = digits.trim().parse().map_err(|_| {
        CliError::usage(format!(
            "{flag} needs a number or percentage, got `{value}`"
        ))
    })?;
    if !percent && parsed > 1.0 {
        return Err(CliError::usage(format!(
            "{flag} {value} looks like a forgotten percent sign — write `{value}%` \
             for {value} percent, or a fraction <= 1"
        )));
    }
    let fraction = if percent { parsed / 100.0 } else { parsed };
    if !(fraction.is_finite() && fraction >= 0.0) {
        return Err(CliError::usage(format!(
            "{flag} must be a non-negative finite tolerance, got `{value}`"
        )));
    }
    Ok(fraction)
}

fn cmd_history_report(args: &[String]) -> CliResult {
    let mut paths: Vec<&str> = Vec::new();
    let mut dir: Option<&str> = None;
    let mut spec_filter: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--dir" | "-d" => dir = Some(options.value_for("--dir")?),
            "--spec" | "-s" => spec_filter = Some(options.value_for("--spec")?),
            "--help" | "-h" => {
                println!("{HISTORY_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!(
                    "report: unknown argument `{flag}`"
                )))
            }
            path => paths.push(path),
        }
    }
    match dir {
        Some(dir) => {
            if !paths.is_empty() {
                return Err(CliError::usage(
                    "report takes either explicit artifact paths or --dir, not both",
                ));
            }
            cmd_history_report_dir(dir, spec_filter)
        }
        None => {
            if spec_filter.is_some() {
                return Err(CliError::usage("--spec only applies to --dir mode"));
            }
            if paths.is_empty() {
                return Err(CliError::usage(
                    "report needs at least one artifact path (oldest first) or --dir",
                ));
            }
            let mut entries = Vec::new();
            for path in paths {
                entries.push((path.to_owned(), read_artifact(path)?));
            }
            let trajectory = Trajectory::build(&entries)
                .map_err(|e| CliError::failure(format!("artifacts do not align: {e}")))?;
            print!("{}", trajectory.to_table());
            Ok(())
        }
    }
}

/// The `--dir` mode of `history report`: scans a directory of nightly-trend
/// artifact sets (loose `*.json` files plus one level of subdirectories,
/// sorted by path so date-stamped nightly directories read oldest first),
/// groups the artifacts by spec name and prints one long-horizon trajectory
/// per spec.
fn cmd_history_report_dir(dir: &str, spec_filter: Option<&str>) -> CliResult {
    let mut candidates: Vec<std::path::PathBuf> = Vec::new();
    let mut top: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::failure(format!("reading {dir}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    top.sort();
    for path in top {
        if path.is_dir() {
            let mut nested: Vec<std::path::PathBuf> = match std::fs::read_dir(&path) {
                Ok(entries) => entries.filter_map(|e| e.ok().map(|e| e.path())).collect(),
                Err(_) => continue,
            };
            nested.sort();
            candidates.extend(
                nested
                    .into_iter()
                    .filter(|p| p.is_file() && p.extension().is_some_and(|ext| ext == "json")),
            );
        } else if path.extension().is_some_and(|ext| ext == "json") {
            candidates.push(path);
        }
    }

    // Group parseable artifacts by spec name, keeping scan (= time) order.
    let mut groups: Vec<(String, Vec<(String, RunArtifact)>)> = Vec::new();
    for path in candidates {
        let label = path.display().to_string();
        let Ok(json) = std::fs::read_to_string(&path) else {
            eprintln!("note: skipping unreadable {label}");
            continue;
        };
        let Ok(artifact) = RunArtifact::from_json(&json) else {
            eprintln!("note: skipping non-artifact JSON {label}");
            continue;
        };
        if spec_filter.is_some_and(|want| want != artifact.spec.name) {
            continue;
        }
        let name = artifact.spec.name.clone();
        match groups.iter_mut().find(|(spec, _)| *spec == name) {
            Some((_, entries)) => entries.push((label, artifact)),
            None => groups.push((name, vec![(label, artifact)])),
        }
    }
    if groups.is_empty() {
        return Err(CliError::failure(match spec_filter {
            Some(spec) => format!("no artifacts of spec `{spec}` found under {dir}"),
            None => format!("no artifacts found under {dir}"),
        }));
    }
    // One misaligned spec (e.g. a version bump or renamed series mid-history)
    // must not make every *other* spec's trajectory unreadable: skip it with a
    // note and fail only when nothing could be rendered at all.
    let mut rendered = 0usize;
    for (spec, entries) in &groups {
        match Trajectory::build(entries) {
            Ok(trajectory) => {
                print!("{}", trajectory.to_table());
                rendered += 1;
            }
            Err(e) => eprintln!("note: skipping `{spec}`: artifacts do not align: {e}"),
        }
    }
    if rendered == 0 {
        return Err(CliError::failure(format!(
            "no artifact series under {dir} aligned into a trajectory"
        )));
    }
    Ok(())
}

fn cmd_history_check(args: &[String]) -> CliResult {
    let mut new_path: Option<&str> = None;
    let mut baseline_path: Option<&str> = None;
    let mut policy = history::RegressionPolicy::default();
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--baseline" | "-b" => baseline_path = Some(options.value_for("--baseline")?),
            "--max-regress" => {
                policy.max_regress =
                    parse_fraction(options.value_for("--max-regress")?, "--max-regress")?
            }
            "--exact-abs" => {
                policy.exact_abs = parse_fraction(options.value_for("--exact-abs")?, "--exact-abs")?
            }
            "--help" | "-h" => {
                println!("{HISTORY_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("check: unknown argument `{flag}`")))
            }
            path if new_path.is_none() => new_path = Some(path),
            other => {
                return Err(CliError::usage(format!(
                    "check takes one new artifact path, got a second: `{other}`"
                )))
            }
        }
    }
    let new_path = new_path.ok_or_else(|| CliError::usage("check needs a new artifact path"))?;
    let baseline_path =
        baseline_path.ok_or_else(|| CliError::usage("check needs --baseline <path>"))?;
    let new = read_artifact(new_path)?;
    let baseline = read_artifact(baseline_path)?;
    let report = history::check(&baseline, &new, &policy)
        .map_err(|e| CliError::failure(format!("artifacts do not align: {e}")))?;
    if report.passed() {
        println!("OK: {new_path} vs {baseline_path}: {report}");
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "{new_path} regressed against {baseline_path}: {report}"
        )))
    }
}
