//! The `soar` CLI: solve φ-BIC instances and drive the declarative experiment
//! pipeline from the shell.
//!
//! ```text
//! soar solve   --in instance.json [--solver soar] [--out report.json]
//! soar sweep   --in instance.json --budgets 1,2,4,8 [--out artifact.json]
//! soar compare --in instance.json [--solvers soar,top,max-load] [--out artifact.json]
//! soar experiment list [--paper]
//! soar experiment run <name>... [--paper] [--reps N] [--out-dir DIR] [--csv]
//! soar experiment check <artifact.json> --golden <golden.json> [--rel X] [--abs X] [--timing-rel X]
//! ```
//!
//! Instances and artifacts are JSON documents (the feature-gated serde support
//! of `soar-core` plus the `soar-exp` artifact format). Exit codes: `0` on
//! success, `1` on operational failures (missing files, invalid JSON, a failed
//! golden check), `2` on usage errors. Argument parsing is hand-rolled — the
//! build environment is offline, so no external CLI crates.

use soar::core::api::{solvers, Instance, SolveReport, Solver};
use soar::exp::prelude::*;
use soar::exp::spec::ExperimentKind;

/// A CLI failure: either bad usage (exit 2) or an operational error (exit 1).
enum CliError {
    Usage(String),
    Failure(String),
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError::Usage(message.into())
    }

    fn failure(message: impl Into<String>) -> Self {
        CliError::Failure(message.into())
    }
}

type CliResult = Result<(), CliError>;

const TOP_USAGE: &str = "usage: soar <solve|sweep|compare|experiment> [options]
       soar --help

subcommands:
  solve       solve one serialized Instance with one solver
  sweep       optimal solutions for a list of budgets (single gather pass)
  compare     run several solvers on one instance
  experiment  list, run and check the declarative paper experiments";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(&args) {
        Ok(()) => 0,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{TOP_USAGE}");
            2
        }
        Err(CliError::Failure(message)) => {
            eprintln!("error: {message}");
            1
        }
    };
    std::process::exit(code);
}

fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("solve") => cmd_solve(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("experiment") => cmd_experiment(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{TOP_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!("unknown subcommand `{other}`"))),
        None => Err(CliError::usage("no subcommand given")),
    }
}

// ---------------------------------------------------------------------------
// Shared option plumbing
// ---------------------------------------------------------------------------

/// Pulls the value of `--flag value` style options out of an argument list.
struct Options<'a> {
    args: &'a [String],
    cursor: usize,
}

impl<'a> Options<'a> {
    fn new(args: &'a [String]) -> Self {
        Options { args, cursor: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.cursor)?;
        self.cursor += 1;
        Some(arg.as_str())
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, CliError> {
        let value = self
            .args
            .get(self.cursor)
            .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))?;
        self.cursor += 1;
        Ok(value.as_str())
    }
}

fn parse_list<T: std::str::FromStr>(value: &str, what: &str) -> Result<Vec<T>, CliError> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| CliError::usage(format!("invalid {what} `{part}`")))
        })
        .collect()
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::failure(format!("reading {path}: {e}")))
}

fn write_file(path: &str, contents: &str) -> CliResult {
    std::fs::write(path, contents).map_err(|e| CliError::failure(format!("writing {path}: {e}")))
}

fn read_instance(path: &str) -> Result<Instance, CliError> {
    serde_json::from_str::<Instance>(&read_file(path)?)
        .map_err(|e| CliError::failure(format!("{path} is not an Instance document: {e}")))
}

fn read_artifact(path: &str) -> Result<RunArtifact, CliError> {
    RunArtifact::from_json(&read_file(path)?)
        .map_err(|e| CliError::failure(format!("{path} is not a RunArtifact document: {e}")))
}

fn resolve_solver(name: &str) -> Result<Box<dyn Solver>, CliError> {
    solvers::by_name(name).ok_or_else(|| {
        CliError::failure(format!(
            "unknown solver `{name}` (registered: {})",
            solvers::NAMES.join(", ")
        ))
    })
}

fn print_report(report: &SolveReport) {
    println!(
        "{:<12} instance {:<24} cost {:>12.4}  normalized {:>8.5}  blue {:>4}/{:<4}  wall {:>9.3} ms",
        report.solver,
        report.instance,
        report.solution.cost,
        report.normalized_cost,
        report.solution.blue_used,
        report.solution.budget,
        report.wall_time.as_secs_f64() * 1e3,
    );
    if let Some(dp) = &report.dp {
        println!(
            "{:<12} dp: {} switches, {} cells, {:.1} kB tables",
            "",
            dp.n_switches,
            dp.table_cells,
            dp.table_bytes as f64 / 1e3
        );
    }
}

/// Provenance spec for artifacts produced from an explicit instance file.
fn adhoc_spec(
    command: &str,
    instance: &Instance,
    solver_names: Vec<String>,
    budgets: Vec<usize>,
) -> ExperimentSpec {
    ExperimentSpec::new(
        format!("adhoc-{command}"),
        format!("CLI {command} of instance `{}`", instance.label()),
        1,
        ExperimentKind::Adhoc {
            command: command.to_owned(),
            instance: instance.label().to_owned(),
            solvers: solver_names,
            budgets,
        },
    )
}

// ---------------------------------------------------------------------------
// solve / sweep / compare
// ---------------------------------------------------------------------------

fn cmd_solve(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut solver_name = "soar";
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--solver" | "-s" => solver_name = options.value_for("--solver")?,
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!("usage: soar solve --in <instance.json> [--solver <name>] [--out <report.json>]");
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "solve: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("solve needs --in <instance.json>"))?;
    let instance = read_instance(input)?;
    let solver = resolve_solver(solver_name)?;
    let report = solver.solve(&instance);
    print_report(&report);
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| CliError::failure(format!("serializing the report: {e}")))?;
        write_file(path, &(json + "\n"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut budgets: Option<Vec<usize>> = None;
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--budgets" | "-b" => {
                budgets = Some(parse_list(options.value_for("--budgets")?, "budget")?)
            }
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: soar sweep --in <instance.json> --budgets <k1,k2,...> [--out <artifact.json>]"
                );
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "sweep: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("sweep needs --in <instance.json>"))?;
    let budgets = budgets.ok_or_else(|| CliError::usage("sweep needs --budgets <k1,k2,...>"))?;
    if budgets.is_empty() {
        return Err(CliError::usage("sweep needs at least one budget"));
    }
    let instance = read_instance(input)?;
    let reports = soar::core::api::sweep_budgets(&instance, &budgets);

    let mut chart = Chart::new(
        format!("Budget sweep of `{}`", instance.label()),
        "k",
        "utilization complexity",
    );
    let mut cost = Series::new("SOAR (optimal)");
    let mut normalized = Series::new("normalized to all-red");
    for report in &reports {
        cost.push(report.solution.budget as f64, report.solution.cost);
        normalized.push(report.solution.budget as f64, report.normalized_cost);
    }
    chart.push(cost);
    chart.push(normalized);
    print!("{}", chart.to_table());

    if let Some(path) = out {
        let spec = adhoc_spec("sweep", &instance, vec!["soar".into()], budgets);
        let dp = reports.iter().find_map(|r| r.dp);
        let mut artifact = RunArtifact::new(spec, vec![chart], dp);
        artifact.reports = reports;
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> CliResult {
    let mut input: Option<&str> = None;
    let mut names: Vec<String> = vec!["soar".into(), "top".into(), "max-load".into()];
    let mut out: Option<&str> = None;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--in" | "-i" => input = Some(options.value_for("--in")?),
            "--solvers" | "-s" => names = parse_list(options.value_for("--solvers")?, "solver")?,
            "--out" | "-o" => out = Some(options.value_for("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: soar compare --in <instance.json> [--solvers <a,b,...>] [--out <artifact.json>]"
                );
                return Ok(());
            }
            other => {
                return Err(CliError::usage(format!(
                    "compare: unknown argument `{other}`"
                )))
            }
        }
    }
    let input = input.ok_or_else(|| CliError::usage("compare needs --in <instance.json>"))?;
    let instance = read_instance(input)?;
    let mut chart = Chart::new(
        format!(
            "Solver comparison on `{}` (k = {})",
            instance.label(),
            instance.budget()
        ),
        "k",
        "utilization complexity",
    );
    let mut reports = Vec::new();
    for name in &names {
        let solver = resolve_solver(name)?;
        let report = solver.solve(&instance);
        print_report(&report);
        let mut series = Series::new(soar::exp::run::paper_label(name));
        series.push(instance.budget() as f64, report.solution.cost);
        chart.push(series);
        reports.push(report);
    }
    if let Some(path) = out {
        let budgets = vec![instance.budget()];
        let spec = adhoc_spec("compare", &instance, names, budgets);
        let dp = reports.iter().find_map(|r| r.dp);
        let mut artifact = RunArtifact::new(spec, vec![chart], dp);
        artifact.reports = reports;
        write_file(path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// experiment list / run / check
// ---------------------------------------------------------------------------

const EXPERIMENT_USAGE: &str = "usage: soar experiment list [--paper]
       soar experiment run <name>... [--paper] [--reps N] [--out-dir DIR] [--csv]
       soar experiment check <artifact.json> --golden <golden.json> [--rel X] [--abs X] [--timing-rel X]";

fn cmd_experiment(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("list") => cmd_experiment_list(&args[1..]),
        Some("run") => cmd_experiment_run(&args[1..]),
        Some("check") => cmd_experiment_check(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{EXPERIMENT_USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown experiment subcommand `{other}`"
        ))),
        None => Err(CliError::usage(
            "experiment needs a subcommand (list, run, check)",
        )),
    }
}

fn parse_scale(args: &[String]) -> bool {
    args.iter().any(|a| a == "--paper")
}

fn cmd_experiment_list(args: &[String]) -> CliResult {
    let scale = if parse_scale(args) {
        Scale::Paper
    } else {
        Scale::Quick
    };
    for arg in args {
        if arg != "--paper" {
            return Err(CliError::usage(format!("list: unknown argument `{arg}`")));
        }
    }
    println!("{:<14} {:>4}  description", "name", "reps");
    for spec in registry::all(scale) {
        println!("{:<14} {:>4}  {}", spec.name, spec.repetitions, spec.title);
    }
    Ok(())
}

fn cmd_experiment_run(args: &[String]) -> CliResult {
    let mut names: Vec<&str> = Vec::new();
    let mut paper = false;
    let mut reps: Option<u64> = None;
    let mut out_dir = "artifacts";
    let mut csv = false;
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--paper" => paper = true,
            "--reps" => {
                reps = Some(
                    options
                        .value_for("--reps")?
                        .parse()
                        .map_err(|_| CliError::usage("--reps needs a number"))?,
                )
            }
            "--out-dir" | "-o" => out_dir = options.value_for("--out-dir")?,
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("{EXPERIMENT_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("run: unknown argument `{flag}`")))
            }
            name => names.push(name),
        }
    }
    if names.is_empty() {
        return Err(CliError::usage(format!(
            "run needs at least one experiment name (registered: {})",
            registry::NAMES.join(", ")
        )));
    }
    let scale = if paper { Scale::Paper } else { Scale::Quick };
    std::fs::create_dir_all(out_dir)
        .map_err(|e| CliError::failure(format!("creating {out_dir}: {e}")))?;
    for name in names {
        let mut spec = registry::by_name(name, scale).ok_or_else(|| {
            CliError::failure(format!(
                "unknown experiment `{name}` (registered: {})",
                registry::NAMES.join(", ")
            ))
        })?;
        // Single-shot specs (fig2, fig3, fig11a, gather-bench) average nothing,
        // so overriding their repetition count would only make the stored spec
        // deviate from goldens without changing any value; same guard as
        // `soar_bench::ExperimentConfig::spec`.
        if let Some(reps) = reps {
            if spec.repetitions != 1 {
                spec.repetitions = reps;
            }
        }
        eprintln!(
            "running {name} ({} repetitions, {} scale)",
            spec.repetitions,
            if paper { "paper" } else { "quick" }
        );
        let artifact = spec.run();
        for chart in &artifact.charts {
            if csv {
                println!("# {}", chart.title);
                print!("{}", chart.to_csv());
            } else {
                println!("{}", chart.to_table());
            }
        }
        let path = format!("{}/{name}.json", out_dir.trim_end_matches('/'));
        write_file(&path, &artifact.to_json())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_experiment_check(args: &[String]) -> CliResult {
    let mut artifact_path: Option<&str> = None;
    let mut golden_path: Option<&str> = None;
    let mut tol = Tolerances::default();
    let mut options = Options::new(args);
    while let Some(arg) = options.next() {
        match arg {
            "--golden" | "-g" => golden_path = Some(options.value_for("--golden")?),
            "--rel" => {
                tol.rel = options
                    .value_for("--rel")?
                    .parse()
                    .map_err(|_| CliError::usage("--rel needs a number"))?
            }
            "--abs" => {
                tol.abs = options
                    .value_for("--abs")?
                    .parse()
                    .map_err(|_| CliError::usage("--abs needs a number"))?
            }
            "--timing-rel" => {
                tol.timing_rel = Some(
                    options
                        .value_for("--timing-rel")?
                        .parse()
                        .map_err(|_| CliError::usage("--timing-rel needs a number"))?,
                )
            }
            "--help" | "-h" => {
                println!("{EXPERIMENT_USAGE}");
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("check: unknown argument `{flag}`")))
            }
            path if artifact_path.is_none() => artifact_path = Some(path),
            other => {
                return Err(CliError::usage(format!(
                    "check takes one artifact path, got a second: `{other}`"
                )))
            }
        }
    }
    let artifact_path =
        artifact_path.ok_or_else(|| CliError::usage("check needs an artifact path"))?;
    let golden_path = golden_path.ok_or_else(|| CliError::usage("check needs --golden <path>"))?;
    let new = read_artifact(artifact_path)?;
    let golden = read_artifact(golden_path)?;
    let report = diff(&golden, &new, &tol);
    if report.is_match() {
        println!(
            "OK: {artifact_path} matches {golden_path} (rel {}, abs {})",
            tol.rel, tol.abs
        );
        Ok(())
    } else {
        Err(CliError::failure(format!(
            "{artifact_path} deviates from {golden_path}: {report}"
        )))
    }
}
