//! End-to-end reproduction of the paper's worked examples (Figs. 1, 2, 3 and 5),
//! exercised through the facade crate the way a downstream user would.

use soar::prelude::*;
use soar::reduce::sim;

/// Fig. 1: five switches, six workers; all-red sends 14 messages, all-blue only 5.
#[test]
fn fig1_all_red_vs_all_blue() {
    let mut builder = TreeBuilder::new();
    let r = builder.root(1.0);
    let a = builder.child_with(r, 1.0, 2, true).unwrap(); // x1, x2
    let _b = builder.child_with(r, 1.0, 1, true).unwrap(); // x3
    let mid = builder.child_with(r, 1.0, 1, true).unwrap(); // x4
    let _c = builder.child_with(mid, 1.0, 2, true).unwrap(); // x5, x6
    let tree = builder.build().unwrap();
    assert_eq!(tree.total_load(), 6);
    assert_eq!(tree.load(a), 2);

    let n = tree.n_switches();
    assert_eq!(cost::message_complexity(&tree, &Coloring::all_red(n)), 14);
    assert_eq!(cost::message_complexity(&tree, &Coloring::all_blue(n)), 5);
}

fn fig2_tree() -> Tree {
    let mut tree = builders::complete_binary_tree(7);
    for (leaf, load) in [(3usize, 2u64), (4, 6), (5, 5), (6, 4)] {
        tree.set_load(leaf, load);
    }
    tree
}

/// Fig. 2: the four strategies at k = 2 — Top 27/28, Max 24, Level 21, SOAR 20.
#[test]
fn fig2_strategy_comparison() {
    let tree = fig2_tree();
    let mut rng = rand::rng();
    let soar = Strategy::Soar.solve(&tree, 2, &mut rng).cost;
    let level = Strategy::Level.solve(&tree, 2, &mut rng).cost;
    let max = Strategy::MaxLoad.solve(&tree, 2, &mut rng).cost;
    let top = Strategy::Top.solve(&tree, 2, &mut rng).cost;

    assert_eq!(soar, 20.0);
    assert_eq!(level, 21.0);
    assert_eq!(max, 24.0);
    assert!(
        top >= 27.0,
        "Top should be the worst of the four (paper: 27)"
    );
    assert!(soar < level && level < max && max < top);
}

/// Fig. 3: the optimal utilization for k = 1..4 is 35, 20, 15, 11, and the optimal sets
/// are not monotone in k.
#[test]
fn fig3_optimal_costs_and_non_monotone_sets() {
    let tree = fig2_tree();
    let costs: Vec<f64> = (0..=4).map(|k| soar::core::solve(&tree, k).cost).collect();
    assert_eq!(costs, vec![51.0, 35.0, 20.0, 15.0, 11.0]);

    // The unique optima for k = 2 and k = 3 share no common switch: the set of blue
    // nodes is not monotone in the budget.
    let k2: std::collections::BTreeSet<_> = soar::core::solve(&tree, 2)
        .coloring
        .blue_nodes()
        .into_iter()
        .collect();
    let k3: std::collections::BTreeSet<_> = soar::core::solve(&tree, 3)
        .coloring
        .blue_nodes()
        .into_iter()
        .collect();
    assert_eq!(k2, [2usize, 4].into_iter().collect());
    assert_eq!(k3, [4usize, 5, 6].into_iter().collect());
    assert!(
        !k2.is_subset(&k3) || k2 == k3,
        "k=2 optimum is not contained in the k=3 optimum"
    );
    assert_eq!(k2.intersection(&k3).count(), 1);
}

/// Fig. 5: the gather tables of the worked example, read through the public API.
#[test]
fn fig5_gather_tables() {
    let tree = fig2_tree();
    let tables = soar::core::soar_gather(&tree, 2);
    // Left internal switch: X(ℓ=0, ·) = (8, 3, 2).
    assert_eq!(tables.x(1, 0, 0), 8.0);
    assert_eq!(tables.x(1, 0, 1), 3.0);
    assert_eq!(tables.x(1, 0, 2), 2.0);
    // Right internal switch: X(ℓ=0, ·) = (9, 5, 2).
    assert_eq!(tables.x(2, 0, 0), 9.0);
    assert_eq!(tables.x(2, 0, 1), 5.0);
    assert_eq!(tables.x(2, 0, 2), 2.0);
    // Destination view: the optimum with two blue nodes is 20.
    assert_eq!(tables.optimum_with_exactly(2), 20.0);
}

/// The packet-level simulator and the closed form agree on every placement of Fig. 2,
/// and completion time behaves sensibly (all-blue completes earlier than all-red).
#[test]
fn fig2_simulation_cross_check() {
    let tree = fig2_tree();
    let n = tree.n_switches();
    let colorings = vec![
        Coloring::all_red(n),
        Coloring::all_blue(n),
        soar::core::solve(&tree, 2).coloring,
    ];
    for coloring in &colorings {
        let report = sim::simulate(&tree, coloring);
        assert!((report.total_busy_time - cost::phi(&tree, coloring)).abs() < 1e-9);
        assert_eq!(report.per_edge_messages, cost::msg_counts(&tree, coloring));
    }
    let red = sim::simulate(&tree, &colorings[0]);
    let blue = sim::simulate(&tree, &colorings[1]);
    assert!(blue.completion_time < red.completion_time);
}

/// The distributed dataplane prototype reaches the same Fig. 2 optimum as the
/// centralized solver.
#[test]
fn fig2_distributed_prototype() {
    let tree = fig2_tree();
    let report = soar::dataplane::run_inline(&tree, 2);
    assert_eq!(report.claimed_cost, 20.0);
    let mut blues = report.coloring.blue_nodes();
    blues.sort_unstable();
    assert_eq!(blues, vec![2, 4]);
    assert_eq!(report.destination_contributors, 17);
}
