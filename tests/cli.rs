//! Integration tests for the `soar` CLI: subcommand parsing, exit codes, JSON
//! round-trips through temp files, and golden checking of self-generated
//! artifacts.

use soar::core::api::{Instance, SolveReport, TopologySpec};
use soar::exp::RunArtifact;
use soar::topology::load::LoadSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn soar_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soar"))
}

fn run(args: &[&str]) -> Output {
    soar_bin().args(args).output().expect("spawning soar")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A scratch directory, removed on drop so test reruns stay clean.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("soar-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("creating temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn path_str(&self, name: &str) -> String {
        self.path(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_instance(path: &Path, budget: usize) -> Instance {
    let instance = Instance::builder()
        .topology(TopologySpec::CompleteKary {
            arity: 2,
            n_switches: 7,
        })
        .leaf_loads(LoadSpec::Explicit(vec![2, 6, 5, 4]))
        .budget(budget)
        .label("cli-fig2")
        .build()
        .unwrap();
    let json = serde_json::to_string_pretty(&instance).unwrap();
    std::fs::write(path, json).expect("writing instance JSON");
    instance
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["solve"][..],
        &["sweep", "--in", "x.json"][..],
        &["experiment"][..],
        &["experiment", "run"][..],
        &["experiment", "check"][..],
        &["solve", "--unknown-flag"][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn operational_failures_exit_1() {
    let tmp = TempDir::new("fail");
    let garbage = tmp.path_str("garbage.json");
    std::fs::write(tmp.path("garbage.json"), "this is not json").unwrap();
    for args in [
        &["solve", "--in", "/nonexistent-instance.json"][..],
        &["solve", "--in", &garbage][..],
        &["experiment", "run", "no-such-experiment"][..],
        &[
            "experiment",
            "check",
            "/nonexistent-a.json",
            "--golden",
            "/nonexistent-b.json",
        ][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(1),
            "args {args:?}: expected failure exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn help_flags_exit_0() {
    for args in [
        &["--help"][..],
        &["solve", "--help"][..],
        &["sweep", "-h"][..],
        &["compare", "-h"][..],
        &["experiment", "--help"][..],
        &["experiment", "run", "--help"][..],
    ] {
        let output = run(args);
        assert_eq!(output.status.code(), Some(0), "args {args:?}");
    }
}

#[test]
fn solve_round_trips_a_report_through_a_tempfile() {
    let tmp = TempDir::new("solve");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 2);
    let report_path = tmp.path_str("report.json");

    let output = run(&["solve", "--in", &instance_path, "--out", &report_path]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(stdout(&output).contains("soar"));

    let report: SolveReport =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.solver, "soar");
    assert_eq!(report.instance, "cli-fig2");
    assert_eq!(report.solution.cost, 20.0);
    assert!(report.dp.is_some());

    // A non-SOAR solver works and reports a (weakly) worse cost.
    let output = run(&["solve", "--in", &instance_path, "--solver", "top"]);
    assert_eq!(output.status.code(), Some(0));
    // An unregistered solver is an operational failure.
    let output = run(&["solve", "--in", &instance_path, "--solver", "nonsense"]);
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn sweep_writes_a_self_checking_artifact() {
    let tmp = TempDir::new("sweep");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 4);
    let artifact_path = tmp.path_str("sweep.json");

    let output = run(&[
        "sweep",
        "--in",
        &instance_path,
        "--budgets",
        "0,1,2,3,4",
        "--out",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    let artifact =
        RunArtifact::from_json(&std::fs::read_to_string(&artifact_path).unwrap()).unwrap();
    assert_eq!(artifact.spec.name, "adhoc-sweep");
    assert_eq!(artifact.reports.len(), 5);
    let curve = &artifact.charts[0].series[0];
    assert_eq!(curve.y_at(0.0), Some(51.0));
    assert_eq!(curve.y_at(2.0), Some(20.0));
    assert_eq!(curve.y_at(4.0), Some(11.0));

    // The sweep artifact checks against itself.
    let output = run(&[
        "experiment",
        "check",
        &artifact_path,
        "--golden",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
}

#[test]
fn compare_reports_all_requested_solvers() {
    let tmp = TempDir::new("compare");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 2);
    let artifact_path = tmp.path_str("compare.json");

    let output = run(&[
        "compare",
        "--in",
        &instance_path,
        "--solvers",
        "soar,top,level",
        "--out",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let artifact =
        RunArtifact::from_json(&std::fs::read_to_string(&artifact_path).unwrap()).unwrap();
    assert_eq!(artifact.reports.len(), 3);
    let chart = &artifact.charts[0];
    assert_eq!(chart.series.len(), 3);
    let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
    let level = chart.series.iter().find(|s| s.label == "Level").unwrap();
    assert_eq!(soar.y_at(2.0), Some(20.0));
    assert_eq!(level.y_at(2.0), Some(21.0));
}

#[test]
fn experiment_run_and_check_pass_on_a_self_generated_golden() {
    let tmp = TempDir::new("exp");
    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");

    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", "fig3", "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    let a = format!("{dir_a}/fig3.json");
    let b = format!("{dir_b}/fig3.json");

    // Cost-based experiments are byte-identical run to run...
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
        "fig3 artifacts are deterministic"
    );
    // ...and a fresh run checks cleanly against the self-generated golden.
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // A perturbed artifact fails the check with exit 1.
    let tampered = std::fs::read_to_string(&a).unwrap().replace("51.0", "50.0");
    assert_ne!(tampered, std::fs::read_to_string(&a).unwrap());
    std::fs::write(tmp.path("tampered.json"), tampered).unwrap();
    let tampered_path = tmp.path_str("tampered.json");
    let output = run(&["experiment", "check", &tampered_path, "--golden", &b]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("deviates"), "{}", stderr(&output));
}

#[test]
fn fresh_runs_match_the_committed_goldens() {
    let tmp = TempDir::new("golden");
    let dir = tmp.path_str("out");
    let goldens = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/exp/goldens");
    for (name, golden_file) in [
        ("fig3", "fig3.quick.json"),
        ("fig9-smoke", "fig9-smoke.quick.json"),
        ("dynamic-churn", "dynamic-churn.quick.json"),
        ("fabric", "fabric.quick.json"),
        ("fabric-sweep", "fabric-sweep.quick.json"),
    ] {
        let output = run(&["experiment", "run", name, "--out-dir", &dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
        let fresh = format!("{dir}/{name}.json");
        let golden = goldens.join(golden_file).to_string_lossy().into_owned();
        let output = run(&["experiment", "check", &fresh, "--golden", &golden]);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} deviates from its committed golden: {}",
            stderr(&output)
        );
    }
}

#[test]
fn experiment_list_names_every_registry_entry() {
    let output = run(&["experiment", "list"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    for name in soar::exp::registry::NAMES {
        assert!(text.contains(name), "missing {name} in list output");
    }
}

/// A minimal, valid user-authored spec document (exists only on disk, never in
/// the registry): a budget curve over a BT(32) with uniform leaf loads.
fn user_spec_json(name: &str, budgets: &str) -> String {
    format!(
        r#"{{
  "name": "{name}",
  "title": "user-authored budget curve",
  "version": 1,
  "repetitions": 1,
  "base_seed": 0,
  "kind": {{
    "BudgetCurve": {{
      "title": "user curve",
      "scenario": {{
        "topology": {{ "CompleteBinaryBt": {{ "n": 32 }} }},
        "load": {{ "Uniform": {{ "min": 4, "max": 6 }} }},
        "placement": "Leaves",
        "rates": {{ "Constant": 1.0 }},
        "seed": 3
      }},
      "budgets": [{budgets}],
      "series_label": "SOAR"
    }}
  }}
}}
"#
    )
}

#[test]
fn instance_output_feeds_solve_and_sweep_unmodified() {
    let tmp = TempDir::new("instance");
    let path = tmp.path_str("minted.json");
    let output = run(&[
        "instance",
        "--topology",
        "bt",
        "--switches",
        "64",
        "--load",
        "power-law",
        "--rates",
        "linear",
        "--seed",
        "7",
        "--budget",
        "4",
        "--out",
        &path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // The minted JSON is a regular Instance document...
    let instance: Instance =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(instance.n_switches(), 63);
    assert_eq!(instance.budget(), 4);

    // ...and feeds solve and sweep unmodified.
    let output = run(&["solve", "--in", &path]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(stdout(&output).contains("soar"));
    let output = run(&["sweep", "--in", &path, "--budgets", "1,2,4"]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // Without --out the document goes to stdout and is the same instance.
    let output = run(&[
        "instance",
        "--topology",
        "bt",
        "--switches",
        "64",
        "--load",
        "power-law",
        "--rates",
        "linear",
        "--seed",
        "7",
        "--budget",
        "4",
    ]);
    assert_eq!(output.status.code(), Some(0));
    let stdout_instance: Instance = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(stdout_instance, instance);

    // Other families work too (explicit loads on a fat-tree, all-switch placement).
    let output = run(&[
        "instance",
        "--topology",
        "fat-tree",
        "--aggs",
        "2",
        "--tors-per-agg",
        "3",
        "--load",
        "constant:2",
        "--placement",
        "all",
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let fat: Instance = serde_json::from_str(&stdout(&output)).unwrap();
    assert_eq!(fat.n_switches(), 9, "core + 2 aggs + 6 ToRs");
}

#[test]
fn instance_usage_errors_exit_2() {
    for args in [
        &["instance"][..],
        &["instance", "--topology", "nope", "--switches", "4"][..],
        &["instance", "--topology", "bt"][..],
        &["instance", "--topology", "bt", "--switches", "1"][..],
        &["instance", "--topology", "fat-tree", "--aggs", "2"][..],
        &[
            "instance",
            "--topology",
            "bt",
            "--switches",
            "8",
            "--load",
            "zipf",
        ][..],
        &[
            "instance",
            "--topology",
            "bt",
            "--switches",
            "8",
            "--load",
            "uniform:9,2",
        ][..],
        &[
            "instance",
            "--topology",
            "bt",
            "--switches",
            "8",
            "--rates",
            "quadratic",
        ][..],
        &[
            "instance",
            "--topology",
            "bt",
            "--switches",
            "8",
            "--placement",
            "roots",
        ][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn user_spec_files_run_and_check_like_registry_specs() {
    let tmp = TempDir::new("user-spec");
    let spec_path = tmp.path_str("my-curve.json");
    std::fs::write(
        tmp.path("my-curve.json"),
        user_spec_json("my-curve", "0, 1, 2, 4"),
    )
    .unwrap();

    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");
    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", &spec_path, "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    // The artifact file is named after the spec, not the file path...
    let a = format!("{dir_a}/my-curve.json");
    let b = format!("{dir_b}/my-curve.json");
    // ...is deterministic...
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    // ...embeds the user spec...
    let artifact = RunArtifact::from_json(&std::fs::read_to_string(&a).unwrap()).unwrap();
    assert_eq!(artifact.spec.name, "my-curve");
    // ...and checks symmetrically against a self-generated golden.
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // --reps is honored for user spec files even when the file says 1 (the
    // registry-only single-shot guard does not apply to explicit requests).
    let dir_c = tmp.path_str("c");
    let output = run(&[
        "experiment",
        "run",
        &spec_path,
        "--reps",
        "2",
        "--out-dir",
        &dir_c,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let c =
        RunArtifact::from_json(&std::fs::read_to_string(format!("{dir_c}/my-curve.json")).unwrap())
            .unwrap();
    assert_eq!(c.spec.repetitions, 2);

    // --reps 0 is a usage error, not a silently clamped run.
    let output = run(&["experiment", "run", &spec_path, "--reps", "0"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
}

#[test]
fn malformed_spec_files_are_rejected_with_exit_2() {
    let tmp = TempDir::new("rejects");
    // (file name, document, expected error fragment)
    let corpus: [(&str, String, &str); 7] = [
        (
            "empty-budgets.json",
            user_spec_json("x", ""),
            "budget grid is empty",
        ),
        (
            "negative-reps.json",
            user_spec_json("x", "1").replace(r#""repetitions": 1"#, r#""repetitions": -3"#),
            "not an ExperimentSpec document",
        ),
        (
            "zero-reps.json",
            user_spec_json("x", "1").replace(r#""repetitions": 1"#, r#""repetitions": 0"#),
            "repetitions must be at least 1",
        ),
        (
            "version-mismatch.json",
            user_spec_json("x", "1").replace(r#""version": 1"#, r#""version": 99"#),
            "version 99",
        ),
        (
            "not-a-spec.json",
            "{\"hello\": \"world\"}".to_owned(),
            "not an ExperimentSpec document",
        ),
        (
            "empty-uniform.json",
            user_spec_json("x", "1").replace(
                r#""load": { "Uniform": { "min": 4, "max": 6 } }"#,
                r#""load": { "Uniform": { "min": 6, "max": 4 } }"#,
            ),
            "uniform load needs min <= max",
        ),
        (
            "path-name.json",
            user_spec_json("x", "1").replace(r#""name": "x""#, r#""name": "../evil""#),
            "path separators",
        ),
    ];
    for (file, contents, expected) in &corpus {
        std::fs::write(tmp.path(file), contents).unwrap();
        let path = tmp.path_str(file);
        let output = run(&["experiment", "run", &path]);
        assert_eq!(
            output.status.code(),
            Some(2),
            "{file}: expected exit 2, stderr: {}",
            stderr(&output)
        );
        assert!(
            stderr(&output).contains(expected),
            "{file}: missing `{expected}` in: {}",
            stderr(&output)
        );
    }

    // A spec naming an unregistered solver (a SolverComparison, which carries a
    // solver list) is caught by validation, with the registry in the message.
    let unknown_solver = r#"{
  "name": "bad-solver",
  "title": "unknown solver",
  "version": 1,
  "repetitions": 1,
  "base_seed": 0,
  "kind": {
    "SolverComparison": {
      "title": "t",
      "scenario": {
        "topology": { "CompleteBinaryBt": { "n": 32 } },
        "load": { "Uniform": { "min": 4, "max": 6 } },
        "placement": "Leaves",
        "rates": { "Constant": 1.0 },
        "seed": 3
      },
      "budget": 2,
      "solvers": ["soar", "frobnicate"],
      "include_all_red": false
    }
  }
}"#;
    std::fs::write(tmp.path("unknown-solver.json"), unknown_solver).unwrap();
    let path = tmp.path_str("unknown-solver.json");
    let output = run(&["experiment", "run", &path]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("unknown solver `frobnicate`"),
        "{}",
        stderr(&output)
    );

    // A *missing* spec file stays an operational failure (exit 1), like every
    // other missing input file.
    let output = run(&["experiment", "run", "/does/not/exist.json"]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
}

#[test]
fn history_reports_and_gates_artifact_series() {
    let tmp = TempDir::new("history");
    let spec_path = tmp.path_str("curve.json");
    std::fs::write(tmp.path("curve.json"), user_spec_json("curve", "0, 1, 2")).unwrap();
    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");
    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", &spec_path, "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    let a = format!("{dir_a}/curve.json");
    let b = format!("{dir_b}/curve.json");

    // The trajectory report aligns the series and prints deltas.
    let output = run(&["history", "report", &a, &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("history of `curve` over 2 run(s)"), "{text}");
    assert!(text.contains("best so far"), "{text}");

    // An identical artifact passes the regression gate...
    let output = run(&["history", "check", &b, "--baseline", &a]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // ...an injected cost regression fails it with exit 1 (costs are exact)...
    let artifact = std::fs::read_to_string(&a).unwrap();
    let mut parsed = RunArtifact::from_json(&artifact).unwrap();
    parsed.charts[0].series[0].points[1].1 += 1.0;
    std::fs::write(tmp.path("regressed.json"), parsed.to_json()).unwrap();
    let regressed = tmp.path_str("regressed.json");
    let output = run(&["history", "check", &regressed, "--baseline", &a]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("exact metric increased"),
        "{}",
        stderr(&output)
    );

    // ...an improvement passes...
    let mut improved = RunArtifact::from_json(&artifact).unwrap();
    improved.charts[0].series[0].points[1].1 -= 1.0;
    std::fs::write(tmp.path("improved.json"), improved.to_json()).unwrap();
    let improved_path = tmp.path_str("improved.json");
    let output = run(&["history", "check", &improved_path, "--baseline", &a]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(
        stdout(&output).contains("1 improved"),
        "{}",
        stdout(&output)
    );

    // ...and misaligned histories (renamed series) are operational failures.
    let mut renamed = RunArtifact::from_json(&artifact).unwrap();
    renamed.charts[0].series[0].label = "renamed".into();
    std::fs::write(tmp.path("renamed.json"), renamed.to_json()).unwrap();
    let renamed_path = tmp.path_str("renamed.json");
    let output = run(&["history", "report", &a, &renamed_path]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("do not align"),
        "{}",
        stderr(&output)
    );
}

#[test]
fn history_check_gates_timing_metrics_relatively() {
    let tmp = TempDir::new("history-timing");
    // gather-bench at a tiny size: chart 0 is a timing chart, charts 1-2 exact.
    let spec = r#"{
  "name": "tiny-bench",
  "title": "tiny gather microbench",
  "version": 1,
  "repetitions": 1,
  "base_seed": 0,
  "kind": { "GatherMicrobench": { "sizes": [64], "budget": 4 } }
}"#;
    std::fs::write(tmp.path("bench.json"), spec).unwrap();
    let spec_path = tmp.path_str("bench.json");
    let dir = tmp.path_str("out");
    let output = run(&["experiment", "run", &spec_path, "--out-dir", &dir]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let artifact_path = format!("{dir}/tiny-bench.json");
    let artifact = std::fs::read_to_string(&artifact_path).unwrap();

    // A 10x wall-time slowdown fails the default 25 % headroom...
    let mut slow = RunArtifact::from_json(&artifact).unwrap();
    assert_eq!(slow.timing_charts, vec![0]);
    for series in &mut slow.charts[0].series {
        for point in &mut series.points {
            point.1 *= 10.0;
        }
    }
    std::fs::write(tmp.path("slow.json"), slow.to_json()).unwrap();
    let slow_path = tmp.path_str("slow.json");
    let output = run(&["history", "check", &slow_path, "--baseline", &artifact_path]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));

    // ...but passes when the caller grants 10x headroom (1000 %).
    let output = run(&[
        "history",
        "check",
        &slow_path,
        "--baseline",
        &artifact_path,
        "--max-regress",
        "1000%",
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // Bad tolerances are usage errors — including a forgotten percent sign,
    // which would otherwise mean a 2500 % headroom.
    for bad in ["lots", "25", "-1"] {
        let output = run(&[
            "history",
            "check",
            &slow_path,
            "--baseline",
            &artifact_path,
            "--max-regress",
            bad,
        ]);
        assert_eq!(
            output.status.code(),
            Some(2),
            "--max-regress {bad}: {}",
            stderr(&output)
        );
    }
}

#[test]
fn online_run_writes_a_replayable_artifact() {
    let tmp = TempDir::new("online");
    let artifact_path = tmp.path_str("churn.json");
    let output = run(&[
        "online",
        "run",
        "--switches",
        "64",
        "--budget",
        "6",
        "--epochs",
        "5",
        "--seed",
        "9",
        "--out",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("cost over time"), "{text}");
    assert!(text.contains("DP cell writes"), "{text}");

    let artifact =
        RunArtifact::from_json(&std::fs::read_to_string(&artifact_path).unwrap()).unwrap();
    assert_eq!(artifact.spec.name, "online-run");
    assert_eq!(artifact.charts.len(), 3);
    // Incremental epochs write fewer cells than a from-scratch solve.
    let cells = &artifact.charts[2];
    let incremental = &cells.series[0];
    let full = &cells.series[1];
    for idx in 1..incremental.points.len() {
        assert!(
            incremental.points[idx].1 < full.points[idx].1,
            "epoch {idx}"
        );
    }

    // The replay gate reproduces the stored trajectory (the determinism gate
    // of the online-smoke CI job).
    let output = run(&["online", "replay", &artifact_path]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(
        stdout(&output).contains("OK: replay"),
        "{}",
        stdout(&output)
    );

    // A tampered trajectory fails the replay with exit 1.
    let mut tampered = artifact.clone();
    tampered.charts[0].series[0].points[1].1 += 1.0;
    std::fs::write(tmp.path("tampered.json"), tampered.to_json()).unwrap();
    let tampered_path = tmp.path_str("tampered.json");
    let output = run(&["online", "replay", &tampered_path]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(stderr(&output).contains("deviates"), "{}", stderr(&output));

    // Replaying a non-churn artifact is rejected as invalid input (exit 2).
    let dir = tmp.path_str("fig3");
    let output = run(&["experiment", "run", "fig3", "--out-dir", &dir]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let fig3 = format!("{dir}/fig3.json");
    let output = run(&["online", "replay", &fig3]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
}

#[test]
fn online_usage_errors_exit_2() {
    for args in [
        &["online"][..],
        &["online", "frobnicate"][..],
        &["online", "run", "--switches", "1"][..],
        &["online", "run", "--epochs", "0"][..],
        &["online", "run", "--reps", "0"][..],
        &["online", "run", "--lifetime", "0.5"][..],
        &["online", "run", "--tenant-leaves", "0"][..],
        &["online", "replay"][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn history_report_dir_renders_long_horizon_trajectories() {
    let tmp = TempDir::new("history-dir");
    // Two nightly-style subdirectories (date-sorted), each holding the same
    // two specs, plus a RUN_STAMP.json that must be skipped, plus one loose
    // artifact at the top level.
    let spec_path = tmp.path_str("curve.json");
    std::fs::write(tmp.path("curve.json"), user_spec_json("curve", "0, 1, 2")).unwrap();
    let nightly = tmp.path_str("nightly");
    for night in ["2026-07-26", "2026-07-27"] {
        let dir = format!("{nightly}/{night}");
        for spec in [&spec_path, &"fig3".to_owned()] {
            let output = run(&["experiment", "run", spec, "--out-dir", &dir]);
            assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
        }
        std::fs::write(format!("{dir}/RUN_STAMP.json"), r#"{"commit": "abc"}"#).unwrap();
    }

    let output = run(&["history", "report", "--dir", &nightly]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("history of `curve` over 2 run(s)"), "{text}");
    assert!(text.contains("history of `fig3` over 2 run(s)"), "{text}");
    assert!(text.contains("2026-07-26"), "oldest first: {text}");
    assert!(
        stderr(&output).contains("skipping non-artifact JSON"),
        "{}",
        stderr(&output)
    );

    // --spec restricts the report to one trajectory.
    let output = run(&["history", "report", "--dir", &nightly, "--spec", "fig3"]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("history of `fig3`"), "{text}");
    assert!(!text.contains("history of `curve`"), "{text}");

    // One misaligned spec (a renamed series mid-history) is skipped with a
    // note; every other spec's trajectory still renders.
    let curve_b = format!("{nightly}/2026-07-27/curve.json");
    let mut renamed = RunArtifact::from_json(&std::fs::read_to_string(&curve_b).unwrap()).unwrap();
    renamed.charts[0].series[0].label = "renamed".into();
    std::fs::write(&curve_b, renamed.to_json()).unwrap();
    let output = run(&["history", "report", "--dir", &nightly]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(!text.contains("history of `curve`"), "{text}");
    assert!(text.contains("history of `fig3` over 2 run(s)"), "{text}");
    assert!(
        stderr(&output).contains("skipping `curve`"),
        "{}",
        stderr(&output)
    );
    // ...but when *nothing* aligns, the report is an operational failure.
    let output = run(&["history", "report", "--dir", &nightly, "--spec", "curve"]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("aligned into a trajectory"),
        "{}",
        stderr(&output)
    );

    // An unknown spec filter / an empty directory are operational failures.
    let output = run(&["history", "report", "--dir", &nightly, "--spec", "nope"]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));
    let empty = tmp.path_str("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let output = run(&["history", "report", "--dir", &empty]);
    assert_eq!(output.status.code(), Some(1), "{}", stderr(&output));

    // Mixing --dir with explicit paths, or --spec without --dir, is a usage error.
    let output = run(&["history", "report", "--dir", &nightly, "extra.json"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    let output = run(&["history", "report", "--spec", "fig3", "a.json"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
}

/// A user-authored fabric-solve spec document; knobs cover the rejection corpus.
fn fabric_spec_json(name: &str, cores: usize, bound: usize, solvers: &str) -> String {
    format!(
        r#"{{
  "name": "{name}",
  "title": "user fabric solve",
  "version": 1,
  "repetitions": 1,
  "base_seed": 0,
  "kind": {{
    "FabricSolve": {{
      "title": "user fabric",
      "fabric": {{
        "topology": {{ "MultiCoreFatTree": {{ "cores": {cores}, "pods": 3, "aggs_per_pod": 2, "tors_per_agg": 2 }} }},
        "load": {{ "Uniform": {{ "min": 4, "max": 6 }} }},
        "rates": {{ "Constant": 1.0 }},
        "seed": 7,
        "budget": 4,
        "congestion_bound": {bound},
        "congestion_weight": 0.5
      }},
      "solvers": [{solvers}],
      "seed_stride": 59
    }}
  }}
}}
"#
    )
}

#[test]
fn malformed_fabric_spec_files_are_rejected_with_exit_2() {
    let tmp = TempDir::new("fabric-rejects");
    let corpus = [
        (
            "zero-cores.json",
            fabric_spec_json("x", 0, 2, r#""fabric-soar""#),
            "at least one core switch",
        ),
        (
            "zero-bound.json",
            fabric_spec_json("x", 2, 0, r#""fabric-soar""#),
            "congestion bound must be at least 1",
        ),
        (
            "unknown-solver.json",
            fabric_spec_json("x", 2, 2, r#""frobnicate""#),
            "unknown fabric solver `frobnicate`",
        ),
        (
            "no-solvers.json",
            fabric_spec_json("x", 2, 2, ""),
            "solver list is empty",
        ),
        (
            // The exhaustive oracle at paper scale: 74 switches at budget 16
            // overflows the subset guard, so validation rejects it up front.
            "oracle-at-scale.json",
            fabric_spec_json("x", 2, 2, r#""fabric-soar", "fabric-brute""#)
                .replace(r#""pods": 3"#, r#""pods": 12"#)
                .replace(r#""budget": 4"#, r#""budget": 16"#),
            "cannot enumerate",
        ),
        (
            "nan-gamma.json",
            fabric_spec_json("x", 2, 2, r#""fabric-soar""#).replace(
                r#""congestion_weight": 0.5"#,
                r#""congestion_weight": -1.0"#,
            ),
            "finite, non-negative",
        ),
    ];
    for (file, contents, expected) in &corpus {
        std::fs::write(tmp.path(file), contents).unwrap();
        let path = tmp.path_str(file);
        let output = run(&["experiment", "run", &path]);
        assert_eq!(
            output.status.code(),
            Some(2),
            "{file}: expected exit 2, stderr: {}",
            stderr(&output)
        );
        assert!(
            stderr(&output).contains(expected),
            "{file}: missing `{expected}` in: {}",
            stderr(&output)
        );
    }
}

#[test]
fn fabric_cli_rejections_exit_2() {
    for args in [
        &["fabric"][..],
        &["fabric", "frobnicate"][..],
        &["fabric", "solve", "--cores", "0"][..],
        &["fabric", "solve", "--gamma", "lots"][..],
        &["fabric", "solve", "--reps", "0"][..],
        // Topology families cannot be mixed, and forest-only flags need --roots.
        &["fabric", "solve", "--roots", "2", "--cores", "2"][..],
        &["fabric", "solve", "--tree-switches", "7"][..],
        // --bounds / --bound / --solvers belong to one mode each.
        &["fabric", "solve", "--bounds", "1,2"][..],
        &["fabric", "sweep", "--bounds", "1", "--bound", "1"][..],
        &[
            "fabric",
            "sweep",
            "--bounds",
            "1,2",
            "--solvers",
            "fabric-soar",
        ][..],
        &["fabric", "sweep"][..],
        // Grid and solver contents are validated like spec files.
        &["fabric", "sweep", "--bounds", "0,1"][..],
        &["fabric", "solve", "--solvers", "frobnicate"][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected exit 2, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn fabric_solve_and_sweep_write_history_compatible_artifacts() {
    let tmp = TempDir::new("fabric");
    let a = tmp.path_str("a.json");
    let b = tmp.path_str("b.json");
    for path in [&a, &b] {
        let output = run(&[
            "fabric",
            "solve",
            "--pods",
            "3",
            "--solvers",
            "fabric-soar,fabric-brute",
            "--seed",
            "5",
            "--out",
            path,
        ]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    // Fabric runs are deterministic end to end...
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    let artifact = RunArtifact::from_json(&std::fs::read_to_string(&a).unwrap()).unwrap();
    assert_eq!(artifact.spec.name, "fabric-solve");
    assert_eq!(artifact.charts.len(), 2);
    assert!(artifact.timing_charts.is_empty(), "fabric kinds are exact");
    // ...and the decomposition solver matches the exhaustive oracle.
    let objective = &artifact.charts[0];
    let soar = objective
        .series
        .iter()
        .find(|s| s.label == "SOAR (fabric)")
        .unwrap();
    let oracle = objective
        .series
        .iter()
        .find(|s| s.label == "Fabric oracle")
        .unwrap();
    assert_eq!(soar.y_at(4.0), oracle.y_at(4.0));
    assert!(soar.y_at(4.0).unwrap() <= 1.0, "never worse than all-red");

    // The artifact flows through the standard golden check and history gates.
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let output = run(&["history", "report", &a, &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(
        stdout(&output).contains("history of `fabric-solve` over 2 run(s)"),
        "{}",
        stdout(&output)
    );

    // The sweep charts cost against the congestion bound; relaxing the bound
    // only helps.
    let sweep_path = tmp.path_str("sweep.json");
    let output = run(&[
        "fabric",
        "sweep",
        "--bounds",
        "1,2,3",
        "--pods",
        "3",
        "--budget",
        "5",
        "--out",
        &sweep_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(
        stdout(&output).contains("cost vs congestion bound"),
        "{}",
        stdout(&output)
    );
    let sweep = RunArtifact::from_json(&std::fs::read_to_string(&sweep_path).unwrap()).unwrap();
    assert_eq!(sweep.spec.name, "fabric-bound-sweep");
    let costs = &sweep.charts[0].series[0].points;
    assert_eq!(costs.len(), 3);
    for window in costs.windows(2) {
        assert!(window[1].1 <= window[0].1 + 1e-12, "{costs:?}");
    }
}

#[test]
fn spec_files_resolve_include_fragments() {
    let tmp = TempDir::new("include");
    std::fs::write(
        tmp.path("base.json"),
        user_spec_json("base-curve", "0, 1, 2"),
    )
    .unwrap();
    std::fs::write(
        tmp.path("derived.json"),
        r#"{"$include": "base.json", "name": "derived-curve"}"#,
    )
    .unwrap();

    // The derived spec runs like an inline one and is named by its override...
    let dir = tmp.path_str("out");
    for spec in ["derived.json", "base.json"] {
        let path = tmp.path_str(spec);
        let output = run(&["experiment", "run", &path, "--out-dir", &dir]);
        assert_eq!(output.status.code(), Some(0), "{spec}: {}", stderr(&output));
    }
    let derived = RunArtifact::from_json(
        &std::fs::read_to_string(format!("{dir}/derived-curve.json")).unwrap(),
    )
    .unwrap();
    let base =
        RunArtifact::from_json(&std::fs::read_to_string(format!("{dir}/base-curve.json")).unwrap())
            .unwrap();
    assert_eq!(derived.spec.name, "derived-curve");
    // ...and produces the same results as the fragment run inline.
    assert_eq!(derived.charts, base.charts);

    // Fragment problems are document errors: exit 2 with the fragment's path.
    std::fs::write(
        tmp.path("dangling.json"),
        r#"{"$include": "missing.json", "name": "d"}"#,
    )
    .unwrap();
    let path = tmp.path_str("dangling.json");
    let output = run(&["experiment", "run", &path]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("cannot read included fragment"),
        "{}",
        stderr(&output)
    );

    std::fs::write(tmp.path("loop-a.json"), r#"{"$include": "loop-b.json"}"#).unwrap();
    std::fs::write(tmp.path("loop-b.json"), r#"{"$include": "loop-a.json"}"#).unwrap();
    let path = tmp.path_str("loop-a.json");
    let output = run(&["experiment", "run", &path]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("include cycle"),
        "{}",
        stderr(&output)
    );

    std::fs::write(tmp.path("grid.json"), "[1, 2]").unwrap();
    std::fs::write(
        tmp.path("bad-merge.json"),
        r#"{"$include": "grid.json", "name": "x"}"#,
    )
    .unwrap();
    let path = tmp.path_str("bad-merge.json");
    let output = run(&["experiment", "run", &path]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    assert!(
        stderr(&output).contains("can only override an object fragment"),
        "{}",
        stderr(&output)
    );
}

#[test]
fn timing_experiments_check_structurally_against_goldens() {
    let tmp = TempDir::new("timing");
    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");
    // fig9-smoke is tiny but still a wall-clock measurement: two runs differ in
    // their timings yet check cleanly, because timing charts diff structurally.
    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", "fig9-smoke", "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    let a = format!("{dir_a}/fig9-smoke.json");
    let b = format!("{dir_b}/fig9-smoke.json");
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
}
