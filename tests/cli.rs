//! Integration tests for the `soar` CLI: subcommand parsing, exit codes, JSON
//! round-trips through temp files, and golden checking of self-generated
//! artifacts.

use soar::core::api::{Instance, SolveReport, TopologySpec};
use soar::exp::RunArtifact;
use soar::topology::load::LoadSpec;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn soar_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_soar"))
}

fn run(args: &[&str]) -> Output {
    soar_bin().args(args).output().expect("spawning soar")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A scratch directory, removed on drop so test reruns stay clean.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("soar-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("creating temp dir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }

    fn path_str(&self, name: &str) -> String {
        self.path(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_instance(path: &Path, budget: usize) -> Instance {
    let instance = Instance::builder()
        .topology(TopologySpec::CompleteKary {
            arity: 2,
            n_switches: 7,
        })
        .leaf_loads(LoadSpec::Explicit(vec![2, 6, 5, 4]))
        .budget(budget)
        .label("cli-fig2")
        .build()
        .unwrap();
    let json = serde_json::to_string_pretty(&instance).unwrap();
    std::fs::write(path, json).expect("writing instance JSON");
    instance
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["solve"][..],
        &["sweep", "--in", "x.json"][..],
        &["experiment"][..],
        &["experiment", "run"][..],
        &["experiment", "check"][..],
        &["solve", "--unknown-flag"][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn operational_failures_exit_1() {
    let tmp = TempDir::new("fail");
    let garbage = tmp.path_str("garbage.json");
    std::fs::write(tmp.path("garbage.json"), "this is not json").unwrap();
    for args in [
        &["solve", "--in", "/nonexistent-instance.json"][..],
        &["solve", "--in", &garbage][..],
        &["experiment", "run", "no-such-experiment"][..],
        &[
            "experiment",
            "check",
            "/nonexistent-a.json",
            "--golden",
            "/nonexistent-b.json",
        ][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(1),
            "args {args:?}: expected failure exit, stderr: {}",
            stderr(&output)
        );
    }
}

#[test]
fn help_flags_exit_0() {
    for args in [
        &["--help"][..],
        &["solve", "--help"][..],
        &["sweep", "-h"][..],
        &["compare", "-h"][..],
        &["experiment", "--help"][..],
        &["experiment", "run", "--help"][..],
    ] {
        let output = run(args);
        assert_eq!(output.status.code(), Some(0), "args {args:?}");
    }
}

#[test]
fn solve_round_trips_a_report_through_a_tempfile() {
    let tmp = TempDir::new("solve");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 2);
    let report_path = tmp.path_str("report.json");

    let output = run(&["solve", "--in", &instance_path, "--out", &report_path]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    assert!(stdout(&output).contains("soar"));

    let report: SolveReport =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report.solver, "soar");
    assert_eq!(report.instance, "cli-fig2");
    assert_eq!(report.solution.cost, 20.0);
    assert!(report.dp.is_some());

    // A non-SOAR solver works and reports a (weakly) worse cost.
    let output = run(&["solve", "--in", &instance_path, "--solver", "top"]);
    assert_eq!(output.status.code(), Some(0));
    // An unregistered solver is an operational failure.
    let output = run(&["solve", "--in", &instance_path, "--solver", "nonsense"]);
    assert_eq!(output.status.code(), Some(1));
}

#[test]
fn sweep_writes_a_self_checking_artifact() {
    let tmp = TempDir::new("sweep");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 4);
    let artifact_path = tmp.path_str("sweep.json");

    let output = run(&[
        "sweep",
        "--in",
        &instance_path,
        "--budgets",
        "0,1,2,3,4",
        "--out",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    let artifact =
        RunArtifact::from_json(&std::fs::read_to_string(&artifact_path).unwrap()).unwrap();
    assert_eq!(artifact.spec.name, "adhoc-sweep");
    assert_eq!(artifact.reports.len(), 5);
    let curve = &artifact.charts[0].series[0];
    assert_eq!(curve.y_at(0.0), Some(51.0));
    assert_eq!(curve.y_at(2.0), Some(20.0));
    assert_eq!(curve.y_at(4.0), Some(11.0));

    // The sweep artifact checks against itself.
    let output = run(&[
        "experiment",
        "check",
        &artifact_path,
        "--golden",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
}

#[test]
fn compare_reports_all_requested_solvers() {
    let tmp = TempDir::new("compare");
    let instance_path = tmp.path_str("instance.json");
    write_instance(&tmp.path("instance.json"), 2);
    let artifact_path = tmp.path_str("compare.json");

    let output = run(&[
        "compare",
        "--in",
        &instance_path,
        "--solvers",
        "soar,top,level",
        "--out",
        &artifact_path,
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let artifact =
        RunArtifact::from_json(&std::fs::read_to_string(&artifact_path).unwrap()).unwrap();
    assert_eq!(artifact.reports.len(), 3);
    let chart = &artifact.charts[0];
    assert_eq!(chart.series.len(), 3);
    let soar = chart.series.iter().find(|s| s.label == "SOAR").unwrap();
    let level = chart.series.iter().find(|s| s.label == "Level").unwrap();
    assert_eq!(soar.y_at(2.0), Some(20.0));
    assert_eq!(level.y_at(2.0), Some(21.0));
}

#[test]
fn experiment_run_and_check_pass_on_a_self_generated_golden() {
    let tmp = TempDir::new("exp");
    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");

    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", "fig3", "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    let a = format!("{dir_a}/fig3.json");
    let b = format!("{dir_b}/fig3.json");

    // Cost-based experiments are byte-identical run to run...
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
        "fig3 artifacts are deterministic"
    );
    // ...and a fresh run checks cleanly against the self-generated golden.
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));

    // A perturbed artifact fails the check with exit 1.
    let tampered = std::fs::read_to_string(&a).unwrap().replace("51.0", "50.0");
    assert_ne!(tampered, std::fs::read_to_string(&a).unwrap());
    std::fs::write(tmp.path("tampered.json"), tampered).unwrap();
    let tampered_path = tmp.path_str("tampered.json");
    let output = run(&["experiment", "check", &tampered_path, "--golden", &b]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("deviates"), "{}", stderr(&output));
}

#[test]
fn fresh_runs_match_the_committed_goldens() {
    let tmp = TempDir::new("golden");
    let dir = tmp.path_str("out");
    let goldens = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/exp/goldens");
    for (name, golden_file) in [
        ("fig3", "fig3.quick.json"),
        ("fig9-smoke", "fig9-smoke.quick.json"),
    ] {
        let output = run(&["experiment", "run", name, "--out-dir", &dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
        let fresh = format!("{dir}/{name}.json");
        let golden = goldens.join(golden_file).to_string_lossy().into_owned();
        let output = run(&["experiment", "check", &fresh, "--golden", &golden]);
        assert_eq!(
            output.status.code(),
            Some(0),
            "{name} deviates from its committed golden: {}",
            stderr(&output)
        );
    }
}

#[test]
fn experiment_list_names_every_registry_entry() {
    let output = run(&["experiment", "list"]);
    assert_eq!(output.status.code(), Some(0));
    let text = stdout(&output);
    for name in soar::exp::registry::NAMES {
        assert!(text.contains(name), "missing {name} in list output");
    }
}

#[test]
fn timing_experiments_check_structurally_against_goldens() {
    let tmp = TempDir::new("timing");
    let dir_a = tmp.path_str("a");
    let dir_b = tmp.path_str("b");
    // fig9-smoke is tiny but still a wall-clock measurement: two runs differ in
    // their timings yet check cleanly, because timing charts diff structurally.
    for dir in [&dir_a, &dir_b] {
        let output = run(&["experiment", "run", "fig9-smoke", "--out-dir", dir]);
        assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    }
    let a = format!("{dir_a}/fig9-smoke.json");
    let b = format!("{dir_b}/fig9-smoke.json");
    let output = run(&["experiment", "check", &a, "--golden", &b]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
}
