//! Cross-crate integration tests for the WC / PS application study (Sec. 5.3, Fig. 8):
//! utilization is application-agnostic, byte complexity is not, and the qualitative
//! ordering between the two use cases holds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::apps::UseCase;
use soar::prelude::*;

fn loaded_bt(n: usize, seed: u64) -> Tree {
    let mut tree = builders::complete_binary_tree_bt(n);
    let mut rng = StdRng::seed_from_u64(seed);
    tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng);
    tree
}

/// The utilization curve (Fig. 8a) does not depend on the application — it is a
/// property of the placement alone.
#[test]
fn utilization_is_application_agnostic() {
    let tree = loaded_bt(64, 1);
    for k in [1usize, 4, 8] {
        let solution = soar::core::solve(&tree, k);
        // Both use cases see exactly the same message counts for the same coloring.
        let wc = UseCase::word_count_default().byte_report(
            &tree,
            &solution.coloring,
            &mut StdRng::seed_from_u64(5),
        );
        let ps = UseCase::parameter_server_default().byte_report(
            &tree,
            &solution.coloring,
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(wc.total_messages, ps.total_messages);
        assert_eq!(
            wc.per_edge_messages,
            cost::msg_counts(&tree, &solution.coloring)
        );
    }
}

/// Byte complexity improves monotonically (within tolerance) with the budget for both
/// use cases, and SOAR with a few blue nodes already beats all-red substantially.
#[test]
fn byte_complexity_improves_with_budget() {
    let tree = loaded_bt(64, 2);
    let all_red = Coloring::all_red(tree.n_switches());
    for use_case in [
        UseCase::word_count_default(),
        UseCase::parameter_server_default(),
    ] {
        let baseline = use_case
            .byte_report(&tree, &all_red, &mut StdRng::seed_from_u64(11))
            .total_bytes as f64;
        let mut previous = f64::INFINITY;
        for k in [0usize, 2, 4, 8, 16] {
            let solution = soar::core::solve(&tree, k);
            let bytes = use_case
                .byte_report(&tree, &solution.coloring, &mut StdRng::seed_from_u64(11))
                .total_bytes as f64;
            let normalized = bytes / baseline;
            assert!(
                normalized <= previous * 1.05,
                "{}: k = {k} normalized bytes {normalized:.3} regressed vs {previous:.3}",
                use_case.label()
            );
            previous = normalized;
        }
        assert!(
            previous < 0.75,
            "{}: 16 blue nodes should cut at least a quarter of the bytes",
            use_case.label()
        );
    }
}

/// The WC use case approaches the all-blue byte complexity faster than PS does
/// (Fig. 8c): aggregating word-count dictionaries early removes duplicate keys, while
/// PS gradients barely shrink.
#[test]
fn wc_approaches_all_blue_faster_than_ps() {
    let tree = loaded_bt(64, 3);
    let k = 8;
    let solution = soar::core::solve(&tree, k);
    let all_blue = Coloring::all_blue(tree.n_switches());

    let ratio = |use_case: &UseCase| {
        let soar_bytes = use_case
            .byte_report(&tree, &solution.coloring, &mut StdRng::seed_from_u64(17))
            .total_bytes as f64;
        let blue_bytes = use_case
            .byte_report(&tree, &all_blue, &mut StdRng::seed_from_u64(17))
            .total_bytes as f64;
        soar_bytes / blue_bytes
    };

    let wc_ratio = ratio(&UseCase::word_count_default());
    let ps_ratio = ratio(&UseCase::parameter_server_default());
    assert!(
        wc_ratio < ps_ratio,
        "WC (ratio {wc_ratio:.2}) should sit closer to all-blue than PS (ratio {ps_ratio:.2})"
    );
}

/// Under the power-law load distribution SOAR's utilization savings are larger than
/// under the uniform distribution (the skewness effect discussed around Fig. 8a).
#[test]
fn power_law_loads_benefit_more_than_uniform() {
    let k = 4;
    let mut uniform_norm = 0.0;
    let mut power_norm = 0.0;
    for seed in 0..5u64 {
        let mut uniform_tree = builders::complete_binary_tree_bt(128);
        let mut power_tree = builders::complete_binary_tree_bt(128);
        let mut rng_u = StdRng::seed_from_u64(seed);
        let mut rng_p = StdRng::seed_from_u64(seed + 100);
        uniform_tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng_u);
        power_tree.apply_leaf_loads(&LoadSpec::paper_power_law(), &mut rng_p);
        uniform_norm += soar::core::solve(&uniform_tree, k).normalized_cost(&uniform_tree);
        power_norm += soar::core::solve(&power_tree, k).normalized_cost(&power_tree);
    }
    assert!(
        power_norm < uniform_norm,
        "power-law ({:.3}) should benefit more than uniform ({:.3})",
        power_norm / 5.0,
        uniform_norm / 5.0
    );
}
