//! Cross-crate integration tests for the online multi-workload scenario (Sec. 5.2),
//! checking the qualitative shape the paper reports in Fig. 7.

use rand::rngs::StdRng;
use rand::SeedableRng;
use soar::multitenant::{workloads::MixedWorkloadGenerator, OnlineAllocator, OnlineReport};
use soar::prelude::*;

fn run(
    tree: &Tree,
    workloads: &[Vec<u64>],
    strategy: Strategy,
    k: usize,
    capacity: u32,
) -> OnlineReport {
    let mut allocator = OnlineAllocator::new(tree, k, capacity);
    let mut rng = StdRng::seed_from_u64(42);
    allocator.run_sequence(workloads, strategy, &mut rng)
}

/// More workloads over fixed capacity push the normalized utilization towards the
/// all-red value of 1.0 (Fig. 7, top row).
#[test]
fn more_workloads_drift_towards_all_red() {
    let tree = builders::complete_binary_tree_bt(64);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut rng = StdRng::seed_from_u64(3);
    let workloads = generator.draw_sequence(&tree, 48, &mut rng);

    let few = run(&tree, &workloads[..4], Strategy::Soar, 8, 2).normalized_total();
    let many = run(&tree, &workloads, Strategy::Soar, 8, 2).normalized_total();
    assert!(
        few < many,
        "serving more workloads ({many:.3}) must look worse than a few ({few:.3})"
    );
    assert!(many <= 1.0 + 1e-9);
}

/// Increasing the per-switch aggregation capacity improves (or at least never hurts)
/// SOAR's normalized utilization (Fig. 7, bottom row).
#[test]
fn larger_capacity_never_hurts_soar() {
    let tree = builders::complete_binary_tree_bt(64);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut rng = StdRng::seed_from_u64(9);
    let workloads = generator.draw_sequence(&tree, 24, &mut rng);

    let mut previous = f64::INFINITY;
    for capacity in [1u32, 2, 4, 8, 16] {
        let total = run(&tree, &workloads, Strategy::Soar, 8, capacity).normalized_total();
        assert!(
            total <= previous + 0.02,
            "capacity {capacity}: {total:.3} should not exceed {previous:.3}"
        );
        previous = total;
    }
}

/// SOAR is at least as good as every contending strategy on the whole sequence, for all
/// three rate regimes (the qualitative claim of Fig. 7).
#[test]
fn soar_wins_online_across_rate_regimes() {
    let base = builders::complete_binary_tree_bt(64);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut rng = StdRng::seed_from_u64(12);
    let workloads = generator.draw_sequence(&base, 16, &mut rng);

    for scheme in [
        RateScheme::paper_constant(),
        RateScheme::paper_linear(),
        RateScheme::paper_exponential(),
    ] {
        let tree = base.with_rates(&scheme);
        let soar = run(&tree, &workloads, Strategy::Soar, 6, 4).normalized_total();
        for strategy in [Strategy::Top, Strategy::MaxLoad, Strategy::Level] {
            let other = run(&tree, &workloads, strategy, 6, 4).normalized_total();
            assert!(
                soar <= other + 1e-9,
                "{}: SOAR {soar:.3} lost to {} {other:.3}",
                scheme.label(),
                strategy.name()
            );
        }
    }
}

/// With unbounded capacity the online run equals solving every workload independently.
#[test]
fn unbounded_capacity_equals_offline_optimum() {
    let tree = builders::complete_binary_tree_bt(32);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut rng = StdRng::seed_from_u64(21);
    let workloads = generator.draw_sequence(&tree, 8, &mut rng);
    let report = run(&tree, &workloads, Strategy::Soar, 4, u32::MAX);
    for (outcome, loads) in report.outcomes.iter().zip(&workloads) {
        let offline = soar::core::solve(&tree.with_loads(loads), 4);
        assert!((outcome.phi - offline.cost).abs() < 1e-9);
    }
}

/// The total capacity consumed never exceeds what the switches offer, for any strategy.
#[test]
fn capacity_accounting_is_exact() {
    let tree = builders::complete_binary_tree_bt(32);
    let generator = MixedWorkloadGenerator::paper_default();
    let mut rng = StdRng::seed_from_u64(31);
    let workloads = generator.draw_sequence(&tree, 40, &mut rng);
    for strategy in [
        Strategy::Soar,
        Strategy::MaxLoad,
        Strategy::Top,
        Strategy::Level,
    ] {
        let mut allocator = OnlineAllocator::new(&tree, 5, 3);
        let mut strategy_rng = StdRng::seed_from_u64(1);
        let report = allocator.run_sequence(&workloads, strategy, &mut strategy_rng);
        let mut used = vec![0u32; tree.n_switches()];
        for outcome in &report.outcomes {
            for v in outcome.coloring.iter_blue() {
                used[v] += 1;
            }
        }
        assert!(
            used.iter().all(|&u| u <= 3),
            "{} oversubscribed a switch",
            strategy.name()
        );
        assert_eq!(
            allocator.capacities().total_residual(),
            (tree.n_switches() as u64) * 3 - used.iter().map(|&u| u as u64).sum::<u64>()
        );
    }
}
