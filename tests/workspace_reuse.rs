//! Property tests of the allocation-free solve path (hand-rolled generators — the
//! build environment has no `proptest`):
//!
//! * a reused [`SolverWorkspace`] produces **bit-identical** `GatherTables`, costs
//!   and colorings to fresh allocation, across random instances and interleaved
//!   budgets (no state leaks between gathers);
//! * once warm for a shape, a workspace performs **zero** buffer (re)allocations,
//!   and the `SoarSolver` reports surface that through `DpStats::alloc_events`;
//! * the `soar-pool` level-parallel gather matches the sequential bottom-up pass
//!   exactly, and agrees with the brute-force oracle where the oracle is
//!   tractable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar::core::api::{solve_batch, DpStats, SoarSolver, Solver};
use soar::core::workspace::SolverWorkspace;
use soar::core::{soar_color, soar_gather, GatherTables};
use soar::prelude::*;
use soar_pool::ThreadPool;

/// A random φ-BIC instance: arbitrary recursive tree, mixed rates, partial Λ.
fn random_tree(rng: &mut StdRng, max_switches: usize) -> Tree {
    let n = rng.random_range(2usize..=max_switches);
    let mut parents = vec![0usize];
    for v in 1..n {
        parents.push(rng.random_range(0..v));
    }
    let rate_choices = [0.5f64, 1.0, 2.0, 4.0];
    let rates: Vec<f64> = (0..n)
        .map(|_| rate_choices[rng.random_range(0..rate_choices.len())])
        .collect();
    let mut tree = Tree::from_parents(&parents, &rates).unwrap();
    for v in 0..n {
        tree.set_load(v, rng.random_range(0u64..8));
        tree.set_available(v, rng.random_bool(0.8));
    }
    tree
}

/// One workspace reused across many random instances and interleaved budgets must
/// be indistinguishable from allocating fresh tables every time.
#[test]
fn reused_workspace_is_bit_identical_to_fresh_allocation() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut ws = SolverWorkspace::new();
    for _ in 0..48 {
        let tree = random_tree(&mut rng, 40);
        // Interleave budgets non-monotonically so every reset both shrinks and
        // grows the arena over the run.
        for k in [3usize, 0, 7, 1, 4] {
            let fresh: GatherTables = soar_gather(&tree, k);
            let reused = ws.gather(&tree, k);
            assert_eq!(
                *reused,
                fresh,
                "workspace state leaked into the tables (n = {}, k = {k})",
                tree.n_switches()
            );
            let (fresh_coloring, fresh_cost) = soar_color(&tree, &fresh);
            let (reused_coloring, reused_cost) = soar_color(&tree, ws.tables());
            assert_eq!(fresh_coloring, reused_coloring);
            assert_eq!(fresh_cost.to_bits(), reused_cost.to_bits());
        }
    }
}

/// After the warm-up pass on a shape, replaying the same shape never allocates —
/// even with smaller budgets and smaller trees interleaved in between.
#[test]
fn warm_workspace_never_allocates_again() {
    let mut rng = StdRng::seed_from_u64(7);
    let big = random_tree(&mut rng, 60);
    let small = random_tree(&mut rng, 12);
    let mut ws = SolverWorkspace::new();
    let _ = ws.gather(&big, 8);
    assert!(ws.last_alloc_events() > 0, "cold start must allocate");
    // Warm up on every shape the loop below replays (a smaller tree can still be
    // *deeper*, which grows the per-node scratch and level tables once).
    let combos: [(&Tree, usize); 4] = [(&big, 8), (&small, 8), (&big, 3), (&small, 1)];
    for &(tree, k) in &combos {
        let _ = ws.gather(tree, k);
    }
    let warm_total = ws.total_alloc_events();
    for round in 0..20 {
        let (tree, k) = combos[round % combos.len()];
        let _ = ws.gather(tree, k);
        assert_eq!(
            ws.last_alloc_events(),
            0,
            "round {round} allocated after warm-up"
        );
    }
    assert_eq!(ws.total_alloc_events(), warm_total);
}

/// The per-thread workspace behind `SoarSolver` makes repeat solves report zero
/// allocation events — the SolveReport-level view of the same invariant.
#[test]
fn soar_solver_reports_allocation_free_steady_state() {
    let instance = Instance::builder()
        .topology(TopologySpec::CompleteBinaryBt { n: 128 })
        .leaf_loads(LoadSpec::paper_power_law())
        .seed(3)
        .budget(8)
        .build()
        .unwrap();
    let warm_up: DpStats = SoarSolver.solve(&instance).dp.expect("SOAR reports stats");
    assert!(warm_up.arena_peak_bytes >= warm_up.table_bytes);
    for _ in 0..3 {
        let report = SoarSolver.solve(&instance);
        let dp = report.dp.expect("SOAR reports stats");
        assert_eq!(
            dp.alloc_events, 0,
            "steady-state solve performed heap allocations"
        );
        assert_eq!(dp.table_cells, warm_up.table_cells);
    }
    // Batch solves reuse per-worker workspaces; the tail of a large-enough batch
    // must contain allocation-free reports (the first solve per worker warms up).
    let instances: Vec<Instance> = (0..16).map(|_| instance.clone()).collect();
    let reports = solve_batch(&SoarSolver, &instances);
    assert!(
        reports
            .iter()
            .filter(|r| r.dp.expect("stats").alloc_events == 0)
            .count()
            >= reports.len().saturating_sub(soar_pool::global().threads()),
        "at most one warm-up solve per pool worker"
    );
}

/// Pool-parallel gather must equal the sequential post-order result bit for bit,
/// across random shapes, budgets and pool sizes.
#[test]
fn parallel_gather_matches_sequential_on_random_instances() {
    let pools = [ThreadPool::new(2), ThreadPool::new(5)];
    let mut rng = StdRng::seed_from_u64(1234);
    let mut ws = SolverWorkspace::new();
    for case in 0..32 {
        let tree = random_tree(&mut rng, 48);
        let k = rng.random_range(0usize..=6);
        let sequential = soar_gather(&tree, k);
        for pool in &pools {
            let parallel = ws.gather_parallel(&tree, k, pool);
            assert_eq!(
                *parallel,
                sequential,
                "case {case}: parallel gather diverged (n = {}, k = {k}, workers = {})",
                tree.n_switches(),
                pool.threads()
            );
        }
        // And the coloring drawn from the parallel tables is the optimum.
        let (coloring, cost_value) = soar_color(&tree, ws.tables());
        assert!((cost::phi(&tree, &coloring) - cost_value).abs() < 1e-9);
    }
}

/// End-to-end cross-check against the exhaustive oracle, solved through a
/// workspace that was already used for *other* instances (stale-state hazard).
#[test]
fn workspace_solves_stay_optimal_against_brute_force() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut ws = SolverWorkspace::new();
    // Dirty the workspace with an unrelated larger instance first.
    let _ = ws.gather(&random_tree(&mut rng, 50), 6);
    for _ in 0..40 {
        let tree = random_tree(&mut rng, 10);
        let k = rng.random_range(0usize..=3);
        let solution = ws.solve(&tree, k);
        let exact = soar::core::brute_force(&tree, k);
        assert!(
            (solution.cost - exact.cost).abs() < 1e-9,
            "workspace SOAR {} vs oracle {} (n = {}, k = {k})",
            solution.cost,
            exact.cost,
            tree.n_switches()
        );
        assert!(solution.coloring.validate(&tree, k).is_ok());
        assert!((cost::phi(&tree, &solution.coloring) - solution.cost).abs() < 1e-9);
    }
}
