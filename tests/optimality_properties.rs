//! Property-based tests of the core invariants (hand-rolled generators — the build
//! environment has no `proptest`):
//!
//! * SOAR is optimal (it matches an exhaustive search) on random weighted, loaded,
//!   availability-restricted trees;
//! * the two formulations of the utilization complexity (Eq. 1 and the barrier view of
//!   Eq. 3) agree on arbitrary colorings;
//! * the packet-level simulator reproduces the closed-form accounting;
//! * SOAR's cost is monotone non-increasing in the budget and bounded by the all-red /
//!   all-blue extremes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar::prelude::*;
use soar::reduce::sim;

/// A random φ-BIC instance small enough for the brute-force oracle.
#[derive(Debug, Clone)]
struct SmallInstance {
    parents: Vec<usize>,
    rates: Vec<f64>,
    loads: Vec<u64>,
    available: Vec<bool>,
    k: usize,
}

impl SmallInstance {
    fn random(rng: &mut StdRng) -> Self {
        let n = rng.random_range(2usize..=11);
        let mut parents = vec![0usize];
        for v in 1..n {
            parents.push(rng.random_range(0..v));
        }
        let rate_choices = [0.5f64, 1.0, 2.0, 4.0];
        SmallInstance {
            parents,
            rates: (0..n)
                .map(|_| rate_choices[rng.random_range(0..rate_choices.len())])
                .collect(),
            loads: (0..n).map(|_| rng.random_range(0u64..8)).collect(),
            available: (0..n).map(|_| rng.random_bool(0.8)).collect(),
            k: rng.random_range(0usize..=4),
        }
    }

    fn build(&self) -> Tree {
        let mut tree = Tree::from_parents(&self.parents, &self.rates).unwrap();
        tree.set_loads(&self.loads);
        tree.set_availability(&self.available);
        tree
    }
}

/// A random coloring over the instance's switches (ignoring availability — the cost
/// formulations must agree for *any* set of blue nodes).
fn random_coloring(n: usize, rng: &mut StdRng) -> Coloring {
    Coloring::from_blue_nodes(n, (0..n).filter(|_| rng.random_bool(0.3))).unwrap()
}

const CASES: u64 = 96;

#[test]
fn soar_matches_brute_force() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = SmallInstance::random(&mut rng);
        let tree = instance.build();
        let soar = soar::core::solve(&tree, instance.k);
        let exact = soar::core::brute_force(&tree, instance.k);
        assert!(
            (soar.cost - exact.cost).abs() < 1e-9,
            "SOAR {} vs brute force {} on {instance:?}",
            soar.cost,
            exact.cost
        );
        // The reported coloring is feasible and achieves the reported cost.
        assert!(soar.coloring.validate(&tree, instance.k).is_ok());
        assert!((cost::phi(&tree, &soar.coloring) - soar.cost).abs() < 1e-9);
    }
}

#[test]
fn eq1_and_eq3_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let instance = SmallInstance::random(&mut rng);
        let tree = instance.build();
        let coloring = random_coloring(tree.n_switches(), &mut rng);
        let direct = cost::phi(&tree, &coloring);
        let barrier = soar::reduce::cost::phi_barrier(&tree, &coloring);
        assert!(
            (direct - barrier).abs() < 1e-9,
            "Eq.1 {direct} vs Eq.3 {barrier} on {instance:?}"
        );
    }
}

#[test]
fn simulator_reproduces_closed_form() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + seed);
        let instance = SmallInstance::random(&mut rng);
        let tree = instance.build();
        let coloring = random_coloring(tree.n_switches(), &mut rng);
        let report = sim::simulate(&tree, &coloring);
        assert_eq!(report.per_edge_messages, cost::msg_counts(&tree, &coloring));
        assert!((report.total_busy_time - cost::phi(&tree, &coloring)).abs() < 1e-9);
    }
}

#[test]
fn soar_cost_is_monotone_in_k_and_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let instance = SmallInstance::random(&mut rng);
        let tree = instance.build();
        let all_red = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
        let all_available_blue = cost::phi(&tree, &Coloring::all_available_blue(&tree));
        let mut previous = f64::INFINITY;
        for k in 0..=instance.k {
            let solution = soar::core::solve(&tree, k);
            assert!(
                solution.cost <= previous + 1e-9,
                "cost must not increase with k"
            );
            assert!(solution.cost <= all_red + 1e-9);
            // With "at most k" semantics SOAR can always fall back to fewer blue nodes,
            // so it is never worse than the better of the two extremes.
            assert!(solution.cost <= all_red.max(all_available_blue) + 1e-9);
            assert!(solution.blue_used <= k);
            previous = solution.cost;
        }
    }
}

#[test]
fn barrier_components_partition_and_sum() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4_000 + seed);
        let instance = SmallInstance::random(&mut rng);
        let tree = instance.build();
        let n = tree.n_switches();
        let coloring = random_coloring(n, &mut rng);
        let components = soar::reduce::cost::barrier_components(&tree, &coloring);
        let mut seen = vec![false; n];
        let mut total = 0.0;
        for component in &components {
            for &v in &component.members {
                assert!(!seen[v], "switch {v} appears in two components");
                seen[v] = true;
            }
            total += soar::reduce::cost::component_cost(&tree, &coloring, component);
        }
        assert!(seen.into_iter().all(|s| s));
        assert!((total - cost::phi(&tree, &coloring)).abs() < 1e-9);
    }
}

/// Larger randomized optimality check on BT topologies with the paper's load
/// distributions, comparing SOAR to the greedy ablation and the strategies — SOAR
/// must never lose.
#[test]
fn soar_dominates_all_strategies_on_bt_instances() {
    let mut rng = StdRng::seed_from_u64(99);
    for seed in 0..6u64 {
        let mut tree = builders::complete_binary_tree_bt(64);
        let spec = if seed % 2 == 0 {
            LoadSpec::paper_uniform()
        } else {
            LoadSpec::paper_power_law()
        };
        let mut load_rng = StdRng::seed_from_u64(seed);
        tree.apply_leaf_loads(&spec, &mut load_rng);
        for scheme in [
            RateScheme::paper_constant(),
            RateScheme::paper_linear(),
            RateScheme::paper_exponential(),
        ] {
            let tree = tree.with_rates(&scheme);
            for k in [1usize, 4, 8] {
                let soar_cost = soar::core::solve(&tree, k).cost;
                for strategy in [
                    Strategy::Top,
                    Strategy::MaxLoad,
                    Strategy::Level,
                    Strategy::Random,
                    Strategy::Greedy,
                ] {
                    let other = strategy.solve(&tree, k, &mut rng).cost;
                    assert!(
                        soar_cost <= other + 1e-9,
                        "SOAR ({soar_cost}) lost to {} ({other}) [seed {seed}, {}, k {k}]",
                        strategy.name(),
                        scheme.label()
                    );
                }
            }
        }
    }
}
