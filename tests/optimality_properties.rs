//! Property-based tests of the core invariants:
//!
//! * SOAR is optimal (it matches an exhaustive search) on random weighted, loaded,
//!   availability-restricted trees;
//! * the two formulations of the utilization complexity (Eq. 1 and the barrier view of
//!   Eq. 3) agree on arbitrary colorings;
//! * the packet-level simulator reproduces the closed-form accounting;
//! * SOAR's cost is monotone non-increasing in the budget and bounded by the all-red /
//!   all-blue extremes.

use proptest::prelude::*;
use soar::prelude::*;
use soar::reduce::sim;

/// A random φ-BIC instance small enough for the brute-force oracle.
#[derive(Debug, Clone)]
struct SmallInstance {
    parents: Vec<usize>,
    rates: Vec<f64>,
    loads: Vec<u64>,
    available: Vec<bool>,
    k: usize,
}

impl SmallInstance {
    fn build(&self) -> Tree {
        let mut tree = Tree::from_parents(&self.parents, &self.rates).unwrap();
        tree.set_loads(&self.loads);
        tree.set_availability(&self.available);
        tree
    }
}

fn small_instance() -> impl Strategy<Value = SmallInstance> {
    // 2..=11 switches; the parent of node v is derived from a random seed modulo v, so
    // parents always precede their children.
    (2usize..=11)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(any::<u64>(), n - 1),
                proptest::collection::vec(
                    prop_oneof![Just(0.5f64), Just(1.0), Just(2.0), Just(4.0)],
                    n,
                ),
                proptest::collection::vec(0u64..8, n),
                proptest::collection::vec(proptest::bool::weighted(0.8), n),
                0usize..=4,
            )
        })
        .prop_map(|(parent_seeds, rates, loads, available, k)| {
            let mut parents = vec![0usize];
            for (i, seed) in parent_seeds.iter().enumerate() {
                parents.push((*seed as usize) % (i + 1));
            }
            SmallInstance {
                parents,
                rates,
                loads,
                available,
                k,
            }
        })
}

/// A random coloring over the instance's switches (ignoring availability — the cost
/// formulations must agree for *any* set of blue nodes).
fn coloring_for(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(proptest::bool::weighted(0.3), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn soar_matches_brute_force(instance in small_instance()) {
        let tree = instance.build();
        let soar = soar::core::solve(&tree, instance.k);
        let exact = soar::core::brute_force(&tree, instance.k);
        prop_assert!((soar.cost - exact.cost).abs() < 1e-9,
            "SOAR {} vs brute force {} on {:?}", soar.cost, exact.cost, instance);
        // The reported coloring is feasible and achieves the reported cost.
        prop_assert!(soar.coloring.validate(&tree, instance.k).is_ok());
        prop_assert!((cost::phi(&tree, &soar.coloring) - soar.cost).abs() < 1e-9);
    }

    #[test]
    fn eq1_and_eq3_agree(instance in small_instance(), blues in coloring_for(12)) {
        let tree = instance.build();
        let n = tree.n_switches();
        let coloring = Coloring::from_blue_nodes(
            n,
            blues.iter().take(n).enumerate().filter_map(|(v, &b)| if b { Some(v) } else { None }),
        ).unwrap();
        let direct = cost::phi(&tree, &coloring);
        let barrier = soar::reduce::cost::phi_barrier(&tree, &coloring);
        prop_assert!((direct - barrier).abs() < 1e-9);
    }

    #[test]
    fn simulator_reproduces_closed_form(instance in small_instance(), blues in coloring_for(12)) {
        let tree = instance.build();
        let n = tree.n_switches();
        let coloring = Coloring::from_blue_nodes(
            n,
            blues.iter().take(n).enumerate().filter_map(|(v, &b)| if b { Some(v) } else { None }),
        ).unwrap();
        let report = sim::simulate(&tree, &coloring);
        prop_assert_eq!(report.per_edge_messages, cost::msg_counts(&tree, &coloring));
        prop_assert!((report.total_busy_time - cost::phi(&tree, &coloring)).abs() < 1e-9);
    }

    #[test]
    fn soar_cost_is_monotone_in_k_and_bounded(instance in small_instance()) {
        let tree = instance.build();
        let all_red = cost::phi(&tree, &Coloring::all_red(tree.n_switches()));
        let all_available_blue = cost::phi(&tree, &Coloring::all_available_blue(&tree));
        let mut previous = f64::INFINITY;
        for k in 0..=instance.k {
            let solution = soar::core::solve(&tree, k);
            prop_assert!(solution.cost <= previous + 1e-9, "cost must not increase with k");
            prop_assert!(solution.cost <= all_red + 1e-9);
            // With "at most k" semantics SOAR can always fall back to fewer blue nodes,
            // so it is never worse than the better of the two extremes.
            prop_assert!(solution.cost <= all_red.max(all_available_blue) + 1e-9);
            prop_assert!(solution.blue_used <= k);
            previous = solution.cost;
        }
    }

    #[test]
    fn barrier_components_partition_and_sum(instance in small_instance(), blues in coloring_for(12)) {
        let tree = instance.build();
        let n = tree.n_switches();
        let coloring = Coloring::from_blue_nodes(
            n,
            blues.iter().take(n).enumerate().filter_map(|(v, &b)| if b { Some(v) } else { None }),
        ).unwrap();
        let components = soar::reduce::cost::barrier_components(&tree, &coloring);
        let mut seen = vec![false; n];
        let mut total = 0.0;
        for component in &components {
            for &v in &component.members {
                prop_assert!(!seen[v], "switch {} appears in two components", v);
                seen[v] = true;
            }
            total += soar::reduce::cost::component_cost(&tree, &coloring, component);
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert!((total - cost::phi(&tree, &coloring)).abs() < 1e-9);
    }
}

/// Larger randomized (non-proptest) optimality check on BT topologies with the paper's
/// load distributions, comparing SOAR to the greedy ablation and the strategies — SOAR
/// must never lose.
#[test]
fn soar_dominates_all_strategies_on_bt_instances() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    // `proptest::prelude::Strategy` (the generator trait) shadows the placement enum in
    // this file, so refer to it explicitly.
    use soar::core::Strategy;
    let mut rng = StdRng::seed_from_u64(99);
    for seed in 0..6u64 {
        let mut tree = builders::complete_binary_tree_bt(64);
        let spec = if seed % 2 == 0 {
            LoadSpec::paper_uniform()
        } else {
            LoadSpec::paper_power_law()
        };
        let mut load_rng = StdRng::seed_from_u64(seed);
        tree.apply_leaf_loads(&spec, &mut load_rng);
        for scheme in [
            RateScheme::paper_constant(),
            RateScheme::paper_linear(),
            RateScheme::paper_exponential(),
        ] {
            let tree = tree.with_rates(&scheme);
            for k in [1usize, 4, 8] {
                let soar_cost = soar::core::solve(&tree, k).cost;
                for strategy in [
                    Strategy::Top,
                    Strategy::MaxLoad,
                    Strategy::Level,
                    Strategy::Random,
                    Strategy::Greedy,
                ] {
                    let other = strategy.solve(&tree, k, &mut rng).cost;
                    assert!(
                        soar_cost <= other + 1e-9,
                        "SOAR ({soar_cost}) lost to {} ({other}) [seed {seed}, {}, k {k}]",
                        strategy.name(),
                        scheme.label()
                    );
                }
            }
        }
    }
}
