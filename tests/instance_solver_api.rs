//! Integration tests of the unified `Instance`/`Solver` API, exercised through the
//! facade crate the way a downstream user would:
//!
//! * a property test over random small trees asserting that **every** registered
//!   solver returns a feasible coloring (`blue_used ≤ k`, blue ⊆ Λ) and that the
//!   SOAR solver matches the brute-force oracle exactly;
//! * batch and budget-sweep entry points produce identical costs to sequential
//!   per-instance solves on a fixed-seed instance set;
//! * the distributed dataplane plugged in as a `Solver` agrees with the
//!   centralized one;
//! * JSON round-trips for `Instance`, `Solution` and `SolveReport` (the
//!   feature-gated serde support).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar::dataplane::DistributedSoarSolver;
use soar::prelude::*;

/// A random, availability-restricted instance small enough for the brute-force
/// oracle, built through `Instance::builder` from a random tree.
fn random_small_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(2usize..=10);
    let mut tree = builders::random_tree(n, &mut rng);
    for v in 0..n {
        tree.set_load(v, rng.random_range(0u64..7));
        tree.set_rate(v, [0.5, 1.0, 2.0, 4.0][rng.random_range(0usize..4)]);
    }
    let unavailable: Vec<usize> = (0..n).filter(|_| rng.random_bool(0.25)).collect();
    let k = rng.random_range(0usize..=3);
    Instance::builder()
        .tree(&tree)
        .unavailable(unavailable)
        .budget(k)
        .label(format!("random#{seed}"))
        .build()
        .expect("random instances are well-formed")
}

/// Every registered solver returns a feasible coloring on every random instance,
/// and SOAR matches the exhaustive oracle exactly.
#[test]
fn all_registered_solvers_are_feasible_and_soar_is_optimal() {
    for seed in 0..60u64 {
        let instance = random_small_instance(seed);
        let tree = instance.tree();
        let k = instance.budget();

        let exact = soar::core::brute_force(tree, k);
        for solver in solvers::all() {
            let report = solver.solve(&instance);
            let coloring = &report.solution.coloring;
            // Feasibility: blue ⊆ Λ always; the budget binds for everyone but the
            // deliberately unbounded all-blue reference.
            for v in coloring.iter_blue() {
                assert!(
                    tree.available(v),
                    "{} colored unavailable switch {v} (seed {seed})",
                    solver.name()
                );
            }
            if solver.name() != "all-blue" {
                assert!(
                    report.solution.blue_used <= k,
                    "{} used {} > k = {k} blue switches (seed {seed})",
                    solver.name(),
                    report.solution.blue_used
                );
                assert!(coloring.validate(tree, k).is_ok());
                // No feasible solver can beat the exhaustive optimum.
                assert!(
                    exact.cost <= report.solution.cost + 1e-9,
                    "{} beat the oracle (seed {seed})",
                    solver.name()
                );
            }
            // The reported cost is the real cost of the reported coloring.
            assert!((cost::phi(tree, coloring) - report.solution.cost).abs() < 1e-9);
        }

        let soar_report = SoarSolver.solve(&instance);
        assert!(
            (soar_report.solution.cost - exact.cost).abs() < 1e-9,
            "SOAR {} vs brute force {} (seed {seed})",
            soar_report.solution.cost,
            exact.cost
        );
    }
}

/// `solve_batch` / `sweep_budgets` produce identical costs to sequential
/// per-instance `solve` calls on a fixed-seed instance set.
#[test]
fn batch_and_sweep_match_sequential_solves() {
    let instances: Vec<Instance> = (0..10u64)
        .map(|seed| {
            Instance::builder()
                .topology(TopologySpec::CompleteBinaryBt { n: 64 })
                .leaf_loads(LoadSpec::paper_power_law())
                .rates(RateScheme::paper_linear())
                .seed(seed)
                .budget(6)
                .build()
                .unwrap()
        })
        .collect();

    // Parallel batch == sequential, report by report.
    let batch = solve_batch(&SoarSolver, &instances);
    for (instance, parallel) in instances.iter().zip(&batch) {
        let sequential = SoarSolver.solve(instance);
        assert_eq!(sequential.solution, parallel.solution);
        assert_eq!(sequential.normalized_cost, parallel.normalized_cost);
        assert_eq!(parallel.instance, instance.label());
    }

    // Budget sweeps (one gather pass) == per-budget solves.
    let budgets = [0usize, 1, 2, 4, 6];
    for (instance, sweep) in instances
        .iter()
        .zip(sweep_budgets_batch(&instances, &budgets))
    {
        for (&k, report) in budgets.iter().zip(&sweep) {
            let direct = SoarSolver.solve(&instance.with_budget(k));
            assert_eq!(direct.solution.cost, report.solution.cost, "budget {k}");
            assert!(report.solution.blue_used <= k);
        }
        // The sweep shares its DP stats across budgets.
        let dp = sweep[0].dp.expect("sweeps report DP stats");
        assert_eq!(dp.budget, 6);
    }
}

/// The same contenders through `solve_matrix` stay consistent with direct solves.
#[test]
fn solve_matrix_is_consistent_with_direct_solves() {
    let instances: Vec<Instance> = (0..4u64)
        .map(|seed| {
            Instance::builder()
                .topology(TopologySpec::TwoTierFatTree {
                    aggs: 4,
                    tors_per_agg: 8,
                })
                .leaf_loads(LoadSpec::paper_uniform())
                .seed(seed)
                .budget(3)
                .build()
                .unwrap()
        })
        .collect();
    let contenders: Vec<Box<dyn Solver>> = ["soar", "top", "level"]
        .iter()
        .map(|name| solvers::by_name(name).unwrap())
        .collect();
    let matrix = solve_matrix(&contenders, &instances);
    assert_eq!(matrix.len(), contenders.len());
    for (solver, row) in contenders.iter().zip(&matrix) {
        assert_eq!(row.len(), instances.len());
        for (instance, report) in instances.iter().zip(row) {
            let direct = solver.solve(instance);
            assert_eq!(direct.solution, report.solution);
        }
    }
}

/// The distributed dataplane, plugged in as a `Solver`, reaches the centralized
/// optimum on every instance.
#[test]
fn distributed_solver_matches_centralized_soar() {
    for seed in 0..8u64 {
        let instance = Instance::builder()
            .topology(TopologySpec::CompleteBinaryBt { n: 32 })
            .leaf_loads(LoadSpec::paper_uniform())
            .seed(seed)
            .budget(4)
            .build()
            .unwrap();
        let centralized = SoarSolver.solve(&instance);
        let distributed = DistributedSoarSolver.solve(&instance);
        assert_eq!(distributed.solver, "soar-distributed");
        assert!(
            (centralized.solution.cost - distributed.solution.cost).abs() < 1e-9,
            "seed {seed}"
        );
        assert!(distributed
            .solution
            .coloring
            .validate(instance.tree(), instance.budget())
            .is_ok());
    }
}

/// Instances, solutions and reports serialize to JSON and back without loss
/// (the `serde` feature of `soar-core`, enabled by the facade).
#[test]
fn instance_solution_and_report_round_trip_through_json() {
    let instance = Instance::builder()
        .topology(TopologySpec::ScaleFreeSf { n: 24 })
        .loads(LoadSpec::Constant(2), LoadPlacement::AllSwitches)
        .rates(RateScheme::paper_exponential())
        .seed(11)
        .budget(3)
        .label("roundtrip")
        .build()
        .unwrap();

    let json = serde_json::to_string(&instance).unwrap();
    let parsed: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(instance, parsed);
    assert_eq!(parsed.label(), "roundtrip");
    assert_eq!(parsed.budget(), 3);
    parsed.tree().validate().unwrap();

    let report = SoarSolver.solve(&instance);
    let solution_json = serde_json::to_string(&report.solution).unwrap();
    let solution: Solution = serde_json::from_str(&solution_json).unwrap();
    assert_eq!(solution, report.solution);

    let report_json = serde_json::to_string(&report).unwrap();
    let parsed_report: SolveReport = serde_json::from_str(&report_json).unwrap();
    assert_eq!(parsed_report, report);

    // DpStats round-trips on its own too (it travels inside RunArtifacts), and
    // its workspace counters survive both present and absent (serde(default)).
    let dp = report.dp.expect("SOAR reports DP stats");
    let dp_json = serde_json::to_string(&dp).unwrap();
    let parsed_dp: soar::core::api::DpStats = serde_json::from_str(&dp_json).unwrap();
    assert_eq!(parsed_dp, dp);
    // A legacy document that predates the workspace counters (arena peak,
    // alloc events, cells written) still parses; the missing fields default.
    let legacy = format!(
        "{{\"n_switches\":{},\"budget\":{},\"table_cells\":{},\"table_bytes\":{}}}",
        dp.n_switches, dp.budget, dp.table_cells, dp.table_bytes
    );
    let parsed_legacy: soar::core::api::DpStats = serde_json::from_str(&legacy).unwrap();
    assert_eq!(parsed_legacy.table_cells, dp.table_cells);
    assert_eq!(parsed_legacy.alloc_events, 0);
    assert_eq!(parsed_legacy.cells_written, 0);
    // A solver of the deserialized instance reproduces the persisted cost.
    assert_eq!(
        SoarSolver.solve(&parsed).solution.cost,
        parsed_report.solution.cost
    );
}

/// The cached all-red baseline is *derived* state: deserialization recomputes it
/// from the tree, so a stale or hand-edited scenario file cannot skew
/// normalization.
#[test]
fn deserialization_recomputes_a_tampered_baseline() {
    let instance = Instance::builder()
        .topology(TopologySpec::CompleteBinaryBt { n: 16 })
        .leaf_loads(LoadSpec::Constant(3))
        .budget(2)
        .build()
        .unwrap();
    let truth = instance.all_red_cost();
    let json = serde_json::to_string(&instance).unwrap();

    // Corrupt the persisted baseline; the tree itself is untouched. (`{:?}` matches
    // the JSON float rendering: integer-valued floats keep a trailing `.0`.)
    let needle = format!("\"all_red_cost\":{truth:?}");
    assert!(json.contains(&needle), "baseline not found in {json}");
    let tampered = json.replace(&needle, "\"all_red_cost\":1.0");
    let parsed: Instance = serde_json::from_str(&tampered).unwrap();
    assert_eq!(parsed.all_red_cost(), truth);

    // A file missing the field entirely (e.g. written by an older tool) loads too.
    let missing = json.replace(&format!(",{needle}"), "");
    assert!(!missing.contains("all_red_cost"));
    let parsed: Instance = serde_json::from_str(&missing).unwrap();
    assert_eq!(parsed.all_red_cost(), truth);
}
