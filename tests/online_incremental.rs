//! Property suite of the `soar-online` incremental re-optimization engine:
//! for random trees × random event streams, every incremental epoch solve is
//! **bit-identical** to a from-scratch solve of the same snapshot, single-leaf
//! updates write strictly fewer DP cells (asserted via `DpStats`), and warm
//! epochs perform zero heap allocations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soar::multitenant::churn::{ChurnEvent, ChurnModel, ChurnTimeline};
use soar::online::{DynamicInstance, IncrementalSolver, OnlineDriver, Verify};
use soar::topology::load::LoadSpec;
use soar::topology::{builders, Tree};

/// A random tree of a random family with random leaf loads — the adversarial
/// input generator of this suite (hand-rolled; the build environment has no
/// proptest).
fn random_loaded_tree(rng: &mut StdRng) -> Tree {
    let n = rng.random_range(8..=72);
    let mut tree = match rng.random_range(0..6) {
        0 => builders::complete_binary_tree(n),
        1 => builders::complete_kary_tree(rng.random_range(2..=4), n),
        2 => builders::random_tree(n, rng),
        3 => builders::random_tree_bounded_degree(n, rng.random_range(2..=5), rng),
        4 => builders::star(n),
        _ => builders::path(n.min(24)),
    };
    for v in tree.leaves().collect::<Vec<_>>() {
        tree.set_load(v, rng.random_range(0..=12));
    }
    tree
}

/// A random event stream over `tree`: churn-model events — including the
/// failure-domain draws (switch-availability flaps and link-rate re-draws) —
/// plus explicitly injected budget changes (which the generator never emits on
/// its own).
fn random_timeline(tree: &Tree, epochs: usize, rng: &mut StdRng) -> ChurnTimeline {
    let model = ChurnModel {
        arrivals_per_epoch: 0.8,
        mean_lifetime: 2.5,
        rate_changes_per_epoch: 1.5,
        tenant_leaves: rng.random_range(1..=3),
        load: LoadSpec::paper_uniform(),
        mixed_tenants: true,
        switch_flaps_per_epoch: 0.7,
        link_rate_changes_per_epoch: 0.7,
        ..ChurnModel::paper_default()
    };
    let mut timeline = model.generate(tree, epochs, rng);
    for epoch in timeline.iter_mut() {
        if rng.random::<f64>() < 0.2 {
            epoch.push(ChurnEvent::BudgetChange {
                budget: rng.random_range(0..=8),
            });
        }
    }
    timeline
}

#[test]
fn incremental_solves_are_bit_identical_to_from_scratch_on_random_streams() {
    // Verify::Tables re-gathers every epoch from scratch inside the driver and
    // asserts the full DP tables, the coloring and the cost are identical.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_loaded_tree(&mut rng);
        let budget = rng.random_range(0..=6);
        let timeline = random_timeline(&tree, 8, &mut rng);
        let mut instance = DynamicInstance::new(&tree, budget);
        let report = OnlineDriver::with_verification(Verify::Tables)
            .run(&mut instance, &timeline)
            .unwrap_or_else(|e| panic!("seed {seed}: timeline failed to replay: {e}"));
        assert_eq!(report.len(), 8, "seed {seed}");
        // Wherever the budget did not change, epochs past the first are
        // incremental and never write more cells than the full table.
        for epoch in &report.epochs[1..] {
            assert!(
                epoch.cells_written <= epoch.cells_full,
                "seed {seed}, epoch {}",
                epoch.epoch
            );
            if epoch.incremental {
                assert_eq!(
                    epoch.alloc_events, 0,
                    "seed {seed}, epoch {}: warm incremental epochs are allocation-free",
                    epoch.epoch
                );
            }
        }
    }
}

#[test]
fn single_leaf_updates_write_strictly_fewer_cells() {
    // On a BT(256) the root path is 8 nodes of ~3000; the saving must be
    // strict for *every* leaf, not just on average.
    let mut tree = builders::complete_binary_tree_bt(256);
    let mut rng = StdRng::seed_from_u64(3);
    tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng);
    let mut instance = DynamicInstance::new(&tree, 8);
    let mut solver = IncrementalSolver::new();
    let full = solver.solve_epoch(&mut instance);
    assert_eq!(full.dp.cells_written, full.dp.table_cells);
    for leaf in tree.leaves().collect::<Vec<_>>() {
        // +1 over the current load so the event is a genuine change (an event
        // that does not move the load dirties nothing and writes zero cells).
        let load = instance.tree().load(leaf) + 1 + rng.random_range(0..8u64);
        instance
            .apply(&ChurnEvent::LeafRateChange { leaf, load })
            .unwrap();
        let outcome = solver.solve_epoch(&mut instance);
        assert!(outcome.incremental, "leaf {leaf}");
        assert!(
            0 < outcome.dp.cells_written && outcome.dp.cells_written < outcome.dp.table_cells,
            "leaf {leaf}: wrote {} of {}",
            outcome.dp.cells_written,
            outcome.dp.table_cells
        );
        assert_eq!(outcome.dp.alloc_events, 0, "leaf {leaf}");
    }
}

#[test]
fn four_k_switch_single_leaf_update_saves_at_least_5x_cell_writes() {
    // The acceptance bar of the online subsystem, also asserted by the
    // dynamic_churn criterion bench: one leaf change on a 4k-switch BT at
    // k = 16 performs >= 5x fewer DP cell writes than from-scratch. (The
    // actual ratio is ~300x: 13 path nodes of 4095.)
    let mut tree = builders::complete_binary_tree_bt(4096);
    let mut rng = StdRng::seed_from_u64(1);
    tree.apply_leaf_loads(&LoadSpec::paper_power_law(), &mut rng);
    let mut instance = DynamicInstance::new(&tree, 16);
    let mut solver = IncrementalSolver::new();
    let _ = solver.solve_epoch(&mut instance);
    let leaf = tree.leaves().next().unwrap();
    instance
        .apply(&ChurnEvent::LeafRateChange { leaf, load: 40 })
        .unwrap();
    let outcome = solver.solve_epoch(&mut instance);
    assert!(outcome.incremental);
    assert!(
        outcome.dp.table_cells >= 5 * outcome.dp.cells_written,
        "wrote {} of {} cells",
        outcome.dp.cells_written,
        outcome.dp.table_cells
    );
    assert_eq!(outcome.dp.alloc_events, 0);
    // The incremental solution is the true optimum of the new snapshot.
    let fresh = soar::core::solve(instance.tree(), 16);
    assert_eq!(outcome.cost, fresh.cost);
    assert_eq!(*solver.coloring(), fresh.coloring);
}

#[test]
fn long_online_runs_stay_allocation_free_once_warm() {
    // 40 churn epochs on one instance: after the first full solve, DpStats
    // must report zero allocation events for every epoch — gather updates,
    // color traces and dirty-set bookkeeping all run in reused buffers.
    let mut tree = builders::complete_binary_tree_bt(128);
    let mut rng = StdRng::seed_from_u64(17);
    tree.apply_leaf_loads(&LoadSpec::paper_uniform(), &mut rng);
    let timeline = ChurnModel::paper_default().generate(&tree, 40, &mut rng);
    let mut instance = DynamicInstance::new(&tree, 8);
    let report = OnlineDriver::new().run(&mut instance, &timeline).unwrap();
    for epoch in &report.epochs[1..] {
        assert!(epoch.incremental, "epoch {}", epoch.epoch);
        assert_eq!(epoch.alloc_events, 0, "epoch {}", epoch.epoch);
    }
    assert!(report.cells_saving_factor() > 2.0);
}
